package power

import (
	"math"
	"testing"
)

func TestCPUSpecValidate(t *testing.T) {
	base := Server4ThinkServerRD450().CPU
	if err := base.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*CPUSpec)
	}{
		{"zero cores", func(c *CPUSpec) { c.Cores = 0 }},
		{"min above nominal", func(c *CPUSpec) { c.MinGHz = 3.0 }},
		{"zero step", func(c *CPUSpec) { c.StepGHz = 0 }},
		{"zero tdp", func(c *CPUSpec) { c.TDPWatts = 0 }},
		{"zero ipc", func(c *CPUSpec) { c.IPCFactor = 0 }},
		{"zero mem demand", func(c *CPUSpec) { c.MemDemandGBPerCore = 0 }},
		{"inverted voltage", func(c *CPUSpec) { c.VNomVolts = c.VMinVolts - 0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := base
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("expected rejection")
			}
		})
	}
}

func TestPStatesGrid(t *testing.T) {
	c := CPUSpec{MinGHz: 1.2, NominalGHz: 1.5, StepGHz: 0.1}
	got := c.PStates()
	want := []float64{1.2, 1.3, 1.4, 1.5}
	if len(got) != len(want) {
		t.Fatalf("PStates = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("PStates = %v, want %v", got, want)
		}
	}
}

func TestPStatesExplicitList(t *testing.T) {
	c := Server1SugonA620rG().CPU
	got := c.PStates()
	want := []float64{1.4, 1.5, 1.7, 1.9, 2.1}
	if len(got) != len(want) {
		t.Fatalf("PStates = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PStates = %v, want %v", got, want)
		}
	}
	// Returned slice must not alias the spec's list.
	got[0] = 99
	if c.PStates()[0] == 99 {
		t.Error("PStates aliases internal list")
	}
}

func TestCPUPowerMonotonicInBusyAndFrequency(t *testing.T) {
	c := Server4ThinkServerRD450().CPU
	for _, f := range c.PStates() {
		prev := -1.0
		for busy := 0.0; busy <= 1.0; busy += 0.1 {
			p := c.Power(busy, f)
			if p <= prev {
				t.Fatalf("power not increasing in busy at f=%v busy=%v", f, busy)
			}
			prev = p
		}
	}
	for busy := 0.1; busy <= 1.0; busy += 0.3 {
		prev := -1.0
		for _, f := range c.PStates() {
			p := c.Power(busy, f)
			if p <= prev {
				t.Fatalf("power not increasing in frequency at busy=%v f=%v", busy, f)
			}
			prev = p
		}
	}
}

func TestCPUPowerBounds(t *testing.T) {
	c := Server4ThinkServerRD450().CPU
	full := c.Power(1, c.NominalGHz)
	if math.Abs(full-c.TDPWatts) > 1e-9 {
		t.Errorf("full power = %v, want TDP %v", full, c.TDPWatts)
	}
	idle := c.Power(0, c.MinGHz)
	if idle <= 0 || idle > 0.3*c.TDPWatts {
		t.Errorf("idle power = %v, want small positive fraction of TDP", idle)
	}
	// Busy fraction is clamped.
	if c.Power(2, c.NominalGHz) != full {
		t.Error("busy > 1 not clamped")
	}
}

func TestDVFSCutsPowerSublinearly(t *testing.T) {
	// Halving frequency must cut dynamic power by more than half (V²
	// scaling) but total CPU power by less than the frequency ratio
	// would suggest for throughput: the EE-loss mechanism of §V.B.
	c := Server4ThinkServerRD450().CPU
	pHi := c.Power(1, 2.4)
	pLo := c.Power(1, 1.2)
	if pLo >= pHi {
		t.Fatal("lower frequency should draw less power")
	}
	// Throughput at 1.2 GHz is half; power should be above half →
	// ops/watt at low frequency is worse.
	if pLo <= pHi*0.5 {
		t.Errorf("power ratio %v too aggressive; EE would improve at low frequency", pLo/pHi)
	}
}

func TestDIMMPower(t *testing.T) {
	d3 := DIMMSpec{SizeGB: 8, Type: DDR3}
	d4 := DIMMSpec{SizeGB: 8, Type: DDR4}
	if d4.Power(0.5) >= d3.Power(0.5) {
		t.Error("DDR4 should draw less than DDR3 at equal size")
	}
	small := DIMMSpec{SizeGB: 4, Type: DDR3}
	big := DIMMSpec{SizeGB: 32, Type: DDR3}
	if big.Power(0.5) <= small.Power(0.5) {
		t.Error("bigger DIMM should draw more")
	}
	// Sublinear per GB: one 32 GB DIMM beats eight 4 GB DIMMs.
	if big.Power(0.5) >= 8*small.Power(0.5) {
		t.Error("per-GB power should be sublinear in DIMM size")
	}
	if d3.Power(1) <= d3.Power(0) {
		t.Error("active DIMM should draw more than idle")
	}
}

func TestPSUEfficiencyCurve(t *testing.T) {
	psu := DefaultPSU(800)
	// Low load is inefficient; mid load is the sweet spot.
	if psu.Efficiency(40) >= psu.Efficiency(400) {
		t.Error("5% load should be less efficient than 50%")
	}
	if psu.Efficiency(400) <= psu.Efficiency(800) {
		t.Error("50% load should beat 100%")
	}
	// Wall power exceeds DC power.
	if psu.WallPower(300) <= 300 {
		t.Error("wall power must exceed DC power")
	}
	// Degenerate PSUs pass power through.
	if (PSUSpec{}).WallPower(100) != 100 {
		t.Error("zero-value PSU should be lossless")
	}
	// Beyond rated load, efficiency holds at the last knot.
	if psu.Efficiency(1600) != psu.Curve[len(psu.Curve)-1].Efficiency {
		t.Error("overload efficiency should clamp to last knot")
	}
}

func TestTableIIServersValid(t *testing.T) {
	servers := TableIIServers()
	if len(servers) != 4 {
		t.Fatalf("TableIIServers = %d entries", len(servers))
	}
	wantCores := []int{32, 4, 12, 12}
	wantMem := []float64{64, 32, 160, 192}
	wantYear := []int{2012, 2013, 2014, 2015}
	for i, s := range servers {
		if err := s.Validate(); err != nil {
			t.Errorf("server %d invalid: %v", i+1, err)
		}
		if got := s.TotalCores(); got != wantCores[i] {
			t.Errorf("server %d cores = %d, want %d", i+1, got, wantCores[i])
		}
		if got := s.MemoryGB(); got != wantMem[i] {
			t.Errorf("server %d memory = %v, want %v", i+1, got, wantMem[i])
		}
		if s.HWYear != wantYear[i] {
			t.Errorf("server %d year = %d, want %d", i+1, s.HWYear, wantYear[i])
		}
	}
}

func TestServerConfigValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*ServerConfig)
	}{
		{"no name", func(s *ServerConfig) { s.Name = "" }},
		{"zero cpus", func(s *ServerConfig) { s.CPUCount = 0 }},
		{"no memory", func(s *ServerConfig) { s.DIMMs = nil }},
		{"bad dimm", func(s *ServerConfig) { s.DIMMs[0].SizeGB = 0 }},
		{"negative platform", func(s *ServerConfig) { s.PlatformIdleWatts = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := Server4ThinkServerRD450()
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("expected rejection")
			}
		})
	}
}

func TestWithMemory(t *testing.T) {
	s := Server4ThinkServerRD450()
	small, err := s.WithMemory(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if small.MemoryGB() != 32 || len(small.DIMMs) != 2 {
		t.Errorf("WithMemory(32,16): %v GB in %d DIMMs", small.MemoryGB(), len(small.DIMMs))
	}
	if small.DIMMs[0].Type != DDR4 {
		t.Error("memory type not preserved")
	}
	if s.MemoryGB() != 192 {
		t.Error("WithMemory mutated the original")
	}
	if _, err := s.WithMemory(30, 16); err == nil {
		t.Error("non-multiple accepted")
	}
	if _, err := s.WithMemory(0, 16); err == nil {
		t.Error("zero total accepted")
	}
}

func TestMemFactorShape(t *testing.T) {
	s := Server4ThinkServerRD450() // demand 2.67 GB/core, 12 cores
	at := func(totalGB int) float64 {
		cfg, err := s.WithMemory(totalGB, 16)
		if err != nil {
			t.Fatal(err)
		}
		return cfg.MaxThroughput(2.4)
	}
	// Above demand: flat.
	if math.Abs(at(96)-at(192)) > 1e-9 {
		t.Error("throughput should be flat above memory demand")
	}
	if math.Abs(at(32)-at(96)) > 1e-9 {
		t.Error("32 GB meets the 2.67 GB/core demand; throughput should match")
	}
	// Below demand: reduced.
	if at(16) >= at(32) {
		t.Error("starved memory should reduce throughput")
	}
}

func TestEEPeaksAtBestMPCServer4(t *testing.T) {
	// The §V.A headline on server #4: best EE at 2.67 GB/core (32 GB);
	// 96 GB (8 GB/core) and 192 GB (16 GB/core) are worse, as is 16 GB.
	s := Server4ThinkServerRD450()
	ee := func(totalGB int) float64 {
		cfg, err := s.WithMemory(totalGB, 16)
		if err != nil {
			t.Fatal(err)
		}
		return cfg.MaxThroughput(2.4) / cfg.WallPower(1, 2.4)
	}
	best := ee(32)
	for _, gb := range []int{16, 96, 192} {
		if ee(gb) >= best {
			t.Errorf("EE(%d GB) = %v should be below EE(32 GB) = %v", gb, ee(gb), best)
		}
	}
	// The decline past the best point is monotone.
	if !(ee(96) > ee(192)) {
		t.Error("EE should keep falling as memory grows past the best point")
	}
	// Rough magnitude check against the paper: −4.6% at 8 GB/core,
	// −11.1% at 16 GB/core; accept generous bands.
	drop96 := (best - ee(96)) / best
	drop192 := (best - ee(192)) / best
	if drop96 < 0.02 || drop96 > 0.12 {
		t.Errorf("EE drop at 96 GB = %.1f%%, want roughly 5%%", 100*drop96)
	}
	if drop192 < 0.06 || drop192 > 0.20 {
		t.Errorf("EE drop at 192 GB = %.1f%%, want roughly 11%%", 100*drop192)
	}
}

func TestEELowerAtLowerFrequency(t *testing.T) {
	// §V.B: EE falls monotonically with CPU frequency on all servers.
	for _, s := range TableIIServers() {
		prev := -1.0
		for _, f := range s.Frequencies() {
			ee := s.MaxThroughput(f) / s.WallPower(1, f)
			if ee <= prev {
				t.Errorf("%s: EE not increasing with frequency at %v GHz", s.Name, f)
			}
			prev = ee
		}
	}
}

func TestPowerIncreasesWithFrequencyAndMemory(t *testing.T) {
	// Fig. 21: peak power rises with both frequency and installed
	// memory.
	s := Server4ThinkServerRD450()
	p24 := s.WallPower(1, 2.4)
	p12 := s.WallPower(1, 1.2)
	if p12 >= p24 {
		t.Error("peak power should rise with frequency")
	}
	small, err := s.WithMemory(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if small.WallPower(1, 2.4) >= p24 {
		t.Error("peak power should rise with installed memory")
	}
}

func TestGovernors(t *testing.T) {
	s := Server4ThinkServerRD450()
	perf, err := Performance().BusyFrequency(s)
	if err != nil || perf != 2.4 {
		t.Errorf("performance = %v, %v", perf, err)
	}
	save, err := PowerSave().BusyFrequency(s)
	if err != nil || save != 1.2 {
		t.Errorf("powersave = %v, %v", save, err)
	}
	od, err := OnDemand().BusyFrequency(s)
	if err != nil || od >= perf || od < perf*0.98 {
		t.Errorf("ondemand = %v, %v; want just below %v", od, err, perf)
	}
	us, err := UserSpace(1.8).BusyFrequency(s)
	if err != nil || us != 1.8 {
		t.Errorf("userspace = %v, %v", us, err)
	}
	if _, err := UserSpace(3.7).BusyFrequency(s); err == nil {
		t.Error("frequency outside P-states accepted")
	}
	if Performance().ThroughputFactor() != 1 || OnDemand().ThroughputFactor() >= 1 {
		t.Error("throughput factors wrong")
	}
	if Performance().Name() != "performance" || OnDemand().Name() != "ondemand" ||
		PowerSave().Name() != "powersave" || UserSpace(1.8).Name() != "1.8GHz" {
		t.Error("governor names wrong")
	}
	if (Governor{Kind: 99}).Name() != "unknown" {
		t.Error("unknown governor name")
	}
	if _, err := (Governor{Kind: 99}).BusyFrequency(s); err == nil {
		t.Error("unknown governor accepted")
	}
}

func TestOnDemandNearPerformanceEE(t *testing.T) {
	// §V.B: ondemand's EE is very close to the top frequency's.
	for _, s := range TableIIServers() {
		fPerf, err := Performance().BusyFrequency(s)
		if err != nil {
			t.Fatal(err)
		}
		fOD, err := OnDemand().BusyFrequency(s)
		if err != nil {
			t.Fatal(err)
		}
		eePerf := s.MaxThroughput(fPerf) / s.WallPower(1, fPerf)
		eeOD := OnDemand().ThroughputFactor() * s.MaxThroughput(fOD) / s.WallPower(1, fOD)
		ratio := eeOD / eePerf
		if ratio < 0.97 || ratio > 1.005 {
			t.Errorf("%s: ondemand/performance EE ratio = %v, want ≈1 from below", s.Name, ratio)
		}
	}
}

func TestMemoryTypeString(t *testing.T) {
	if DDR3.String() != "DDR3" || DDR4.String() != "DDR4" || MemoryType(9).String() != "Unknown" {
		t.Error("MemoryType.String mismatch")
	}
}

func TestPowerBreakdownConsistent(t *testing.T) {
	// The component attribution must reproduce the aggregate model
	// exactly at every operating point.
	for _, srv := range TableIIServers() {
		for _, busy := range []float64{0, 0.3, 0.7, 1.0} {
			for _, f := range []float64{srv.CPU.MinGHz, srv.CPU.NominalGHz} {
				b := srv.PowerBreakdown(busy, f)
				var sum float64
				for _, c := range AllComponents() {
					sum += b.Watts[c]
				}
				if math.Abs(sum-b.TotalWatts) > 1e-9 {
					t.Fatalf("%s: components sum to %v, total %v", srv.Name, sum, b.TotalWatts)
				}
				if math.Abs(b.TotalWatts-srv.WallPower(busy, f)) > 1e-9 {
					t.Fatalf("%s: breakdown total %v != WallPower %v", srv.Name, b.TotalWatts, srv.WallPower(busy, f))
				}
			}
		}
	}
}

func TestPowerBreakdownShapes(t *testing.T) {
	srv := Server4ThinkServerRD450()
	idle := srv.PowerBreakdown(0, 2.4)
	full := srv.PowerBreakdown(1, 2.4)
	// CPU dominates the swing between idle and full load.
	cpuSwing := full.Watts[ComponentCPU] - idle.Watts[ComponentCPU]
	memSwing := full.Watts[ComponentMemory] - idle.Watts[ComponentMemory]
	if cpuSwing <= memSwing {
		t.Errorf("CPU swing %v should dominate memory swing %v", cpuSwing, memSwing)
	}
	// Platform power is constant — it is what caps proportionality.
	if idle.Watts[ComponentPlatform] != full.Watts[ComponentPlatform] {
		t.Error("platform power should not vary with load")
	}
	// PSU loss is positive everywhere.
	if idle.Watts[ComponentPSULoss] <= 0 || full.Watts[ComponentPSULoss] <= 0 {
		t.Error("PSU loss missing")
	}
	// Shares sum to 1.
	var shares float64
	for _, c := range AllComponents() {
		shares += full.Share(c)
	}
	if math.Abs(shares-1) > 1e-9 {
		t.Errorf("shares sum to %v", shares)
	}
	// More DIMMs → bigger memory share (the §V.A mechanism).
	big := srv
	small, err := srv.WithMemory(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if big.PowerBreakdown(1, 2.4).Share(ComponentMemory) <= small.PowerBreakdown(1, 2.4).Share(ComponentMemory) {
		t.Error("192 GB should spend a larger share on memory than 32 GB")
	}
}

func TestComponentStrings(t *testing.T) {
	if ComponentCPU.String() != "CPU" || ComponentPSULoss.String() != "PSU loss" {
		t.Error("component names")
	}
	if Component(99).String() != "Unknown" {
		t.Error("unknown component name")
	}
	if len(AllComponents()) != 6 {
		t.Error("want 6 components")
	}
}
