package power

import (
	"fmt"
	"math"
)

// GovernorKind enumerates the Linux cpufreq governors the paper's
// experiments sweep.
type GovernorKind int

// Governors.
const (
	GovernorPerformance GovernorKind = iota + 1
	GovernorOnDemand
	GovernorPowerSave
	GovernorUserSpace
)

// Governor selects the CPU frequency policy for a run. For
// GovernorUserSpace, FixedGHz pins the frequency; other kinds ignore it.
type Governor struct {
	Kind     GovernorKind
	FixedGHz float64
}

// Performance runs at the highest P-state.
func Performance() Governor { return Governor{Kind: GovernorPerformance} }

// OnDemand ramps to the top frequency while busy.
func OnDemand() Governor { return Governor{Kind: GovernorOnDemand} }

// PowerSave pins the lowest P-state.
func PowerSave() Governor { return Governor{Kind: GovernorPowerSave} }

// UserSpace pins the given frequency.
func UserSpace(freqGHz float64) Governor {
	return Governor{Kind: GovernorUserSpace, FixedGHz: freqGHz}
}

// Name returns the cpufreq-style governor name; userspace governors
// include the pinned frequency.
func (g Governor) Name() string {
	switch g.Kind {
	case GovernorPerformance:
		return "performance"
	case GovernorOnDemand:
		return "ondemand"
	case GovernorPowerSave:
		return "powersave"
	case GovernorUserSpace:
		return fmt.Sprintf("%.1fGHz", g.FixedGHz)
	default:
		return "unknown"
	}
}

// onDemand ramp-lag constants: the governor samples utilization and
// lags bursts slightly, costing a little throughput and running busy
// phases marginally below the top P-state.
const (
	onDemandFreqFactor       = 0.995
	onDemandThroughputFactor = 0.99
)

// BusyFrequency returns the effective frequency the CPU runs at while
// executing work under this governor.
func (g Governor) BusyFrequency(cfg ServerConfig) (float64, error) {
	freqs := cfg.Frequencies()
	lo, hi := freqs[0], freqs[len(freqs)-1]
	switch g.Kind {
	case GovernorPerformance:
		return hi, nil
	case GovernorOnDemand:
		return hi * onDemandFreqFactor, nil
	case GovernorPowerSave:
		return lo, nil
	case GovernorUserSpace:
		for _, f := range freqs {
			if math.Abs(f-g.FixedGHz) < 1e-9 {
				return f, nil
			}
		}
		return 0, fmt.Errorf("power: %v GHz is not a P-state of %s (have %v)", g.FixedGHz, cfg.Name, freqs)
	default:
		return 0, fmt.Errorf("power: unknown governor kind %d", g.Kind)
	}
}

// ThroughputFactor returns the fraction of ideal throughput retained
// under this governor (ondemand pays a small ramp-lag penalty).
func (g Governor) ThroughputFactor() float64 {
	if g.Kind == GovernorOnDemand {
		return onDemandThroughputFactor
	}
	return 1
}
