package dataset_test

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// v1Bytes and v2Bytes encode the same corpus in both binary layouts.
func v1Bytes(t *testing.T, rs []*dataset.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dataset.WriteBinary(&buf, rs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func v2Bytes(t *testing.T, rs []*dataset.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dataset.WriteColumns(&buf, dataset.BuildColumns(rs)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestColumnarV2RoundTripMatchesV1 pins the acceptance property: the
// sectioned columnar v2 bytes decode — through the ColumnStore and its
// lazy result views — to exactly the same results as the record-major
// v1 bytes, field for field and bit for bit.
func TestColumnarV2RoundTripMatchesV1(t *testing.T) {
	src := binaryTestCorpus(t)
	fromV1, err := dataset.ReadBinary(bytes.NewReader(v1Bytes(t, src)))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := dataset.ReadColumns(bytes.NewReader(v2Bytes(t, src)))
	if err != nil {
		t.Fatal(err)
	}
	fromV2 := cs.Materialize()
	if len(fromV2) != len(fromV1) {
		t.Fatalf("v2 decoded %d results, want %d", len(fromV2), len(fromV1))
	}
	if !bytes.Equal(jsonBytes(t, fromV2), jsonBytes(t, fromV1)) {
		t.Error("v2 round trip differs from v1 round trip")
	}
}

// TestReadBinaryAcceptsV2 checks that the record-oriented entry point
// transparently reads the columnar layout.
func TestReadBinaryAcceptsV2(t *testing.T) {
	src := binaryTestCorpus(t)[:40]
	got, err := dataset.ReadBinary(bytes.NewReader(v2Bytes(t, src)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonBytes(t, got), jsonBytes(t, src)) {
		t.Error("ReadBinary(v2) is not bit-identical to the source")
	}
}

// TestColumnWriterChunked drives the streaming v2 writer shard by
// shard and checks the multi-chunk file reassembles the whole corpus.
func TestColumnWriterChunked(t *testing.T) {
	src := binaryTestCorpus(t)
	var buf bytes.Buffer
	cw, err := dataset.NewColumnWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const shard = 100
	for lo := 0; lo < len(src); lo += shard {
		hi := lo + shard
		if hi > len(src) {
			hi = len(src)
		}
		if err := cw.WriteChunk(dataset.BuildColumns(src[lo:hi])); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	cs, err := dataset.ReadColumns(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() != len(src) {
		t.Fatalf("chunked file decoded %d rows, want %d", cs.Len(), len(src))
	}
	if !bytes.Equal(jsonBytes(t, cs.Materialize()), jsonBytes(t, src)) {
		t.Error("chunked v2 stream is not bit-identical to the source")
	}
}

// TestColumnsV2RejectsCorruption exercises the v2 decoder's bound and
// structure checks.
func TestColumnsV2RejectsCorruption(t *testing.T) {
	src := binaryTestCorpus(t)[:5]
	good := v2Bytes(t, src)

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, 6, len(good) / 2, len(good) - 1} {
			if _, err := dataset.ReadColumns(bytes.NewReader(good[:cut])); err == nil {
				t.Errorf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("header only is empty corpus", func(t *testing.T) {
		// Magic + version with zero chunks is a valid empty v2 file —
		// exactly what WriteColumns emits for an empty store.
		cs, err := dataset.ReadColumns(bytes.NewReader(good[:5]))
		if err != nil {
			t.Fatal(err)
		}
		if cs.Len() != 0 {
			t.Errorf("header-only file decoded %d rows", cs.Len())
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xFF
		if _, err := dataset.ReadColumns(bytes.NewReader(bad)); err == nil {
			t.Error("corrupt magic accepted")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[4] = 0x7F
		if _, err := dataset.ReadColumns(bytes.NewReader(bad)); err == nil {
			t.Error("unknown version accepted")
		}
	})
	t.Run("oversized row count", func(t *testing.T) {
		bad := append([]byte(nil), good[:5]...)
		bad = append(bad, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F) // rows ≫ maxChunkRows
		if _, err := dataset.ReadColumns(bytes.NewReader(bad)); err == nil {
			t.Error("oversized chunk row count accepted")
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		// Flipping a byte in the middle of the section payloads must
		// either fail decoding or change the decoded data — never panic.
		bad := append([]byte(nil), good...)
		bad[len(bad)/2] ^= 0xFF
		cs, err := dataset.ReadColumns(bytes.NewReader(bad))
		if err == nil && bytes.Equal(jsonBytes(t, cs.Materialize()), jsonBytes(t, src)) {
			t.Error("flipped byte decoded to identical data")
		}
	})
}

// TestColumnRepositoryMatchesResultRepository checks the adapter-view
// contract: a column-born repository answers every accessor exactly
// like the result-born repository it was built from.
func TestColumnRepositoryMatchesResultRepository(t *testing.T) {
	rs := binaryTestCorpus(t)
	base := dataset.NewRepository(rs)
	colRP := dataset.NewColumnRepository(dataset.BuildColumns(rs))

	if base.Len() != colRP.Len() {
		t.Fatalf("Len %d vs %d", colRP.Len(), base.Len())
	}
	eqF := func(name string, a, b []float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: len %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
				t.Fatalf("%s[%d]: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
	eqF("EPs", base.EPs(), colRP.EPs())
	eqF("OverallEEs", base.OverallEEs(), colRP.OverallEEs())
	eqF("PeakEEs", base.PeakEEs(), colRP.PeakEEs())
	eqF("IdleFractions", base.IdleFractions(), colRP.IdleFractions())
	eqF("DynamicRanges", base.DynamicRanges(), colRP.DynamicRanges())

	ids := func(rp *dataset.Repository) []string {
		out := make([]string, 0, rp.Len())
		for _, r := range rp.SortByEP() {
			out = append(out, r.ID)
		}
		return out
	}
	a, b := ids(base), ids(colRP)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SortByEP[%d]: %s vs %s", i, b[i], a[i])
		}
	}

	if base.Valid().Len() != colRP.Valid().Len() {
		t.Errorf("Valid: %d vs %d", colRP.Valid().Len(), base.Valid().Len())
	}
	if base.NonCompliant().Len() != colRP.NonCompliant().Len() {
		t.Errorf("NonCompliant: %d vs %d", colRP.NonCompliant().Len(), base.NonCompliant().Len())
	}
	if base.YearRange(2012, 2016).Len() != colRP.YearRange(2012, 2016).Len() {
		t.Errorf("YearRange: %d vs %d", colRP.YearRange(2012, 2016).Len(), base.YearRange(2012, 2016).Len())
	}
	want := rs[17].ID
	got := colRP.FindByID(want)
	if got == nil || got.ID != want {
		t.Errorf("FindByID(%q) = %v", want, got)
	}
}

// TestAddDuringConcurrentReads is the -race regression for the
// snapshot contract: Add publishes new immutable state while readers
// hammer the metric columns, sorts, and row accessors. Every reader
// must observe an internally consistent snapshot — EPs, All, and Len
// agree with each other — and nothing may race or panic.
func TestAddDuringConcurrentReads(t *testing.T) {
	rs := binaryTestCorpus(t)
	rp := dataset.NewRepository(rs[:100])
	extra := rs[100:200]

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				eps := rp.EPs()
				all := rp.All()
				if len(eps) < 100 || len(all) < 100 {
					t.Errorf("snapshot shrank: %d eps, %d results", len(eps), len(all))
					return
				}
				if len(eps) == len(all) {
					// Same-snapshot consistency spot check.
					if ep := all[0].EP(); ep != eps[0] {
						t.Errorf("EPs[0]=%v disagrees with All()[0] EP=%v", eps[0], ep)
						return
					}
				}
				_ = rp.SortByEP()
				_ = rp.Valid().Len()
			}
		}()
	}
	for _, r := range extra {
		rp.Add(r)
	}
	close(stop)
	wg.Wait()
	if rp.Len() != 200 {
		t.Fatalf("Len = %d after adds, want 200", rp.Len())
	}
	if got := len(rp.EPs()); got != 200 {
		t.Fatalf("EPs length %d after adds, want 200", got)
	}
}

// TestReadPathDispatch checks the shared CLI loader: CSV and JSON by
// extension, EPFB by content sniffing regardless of extension.
func TestReadPathDispatch(t *testing.T) {
	rs := binaryTestCorpus(t)[:30]
	dir := t.TempDir()
	write := func(name string, enc func(*os.File) error) string {
		t.Helper()
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return p
	}
	paths := map[string]string{
		"csv":  write("corpus.csv", func(f *os.File) error { return dataset.WriteCSV(f, rs) }),
		"json": write("corpus.json", func(f *os.File) error { return dataset.WriteJSON(f, rs) }),
		"v1":   write("corpus_v1.epfb", func(f *os.File) error { return dataset.WriteBinary(f, rs) }),
		// The v2 file deliberately carries a .csv extension: dispatch
		// must sniff the magic, not trust the name.
		"v2": write("corpus_v2.csv", func(f *os.File) error {
			return dataset.WriteColumns(f, dataset.BuildColumns(rs))
		}),
	}
	want := jsonBytes(t, rs)
	for kind, p := range paths {
		rp, err := dataset.ReadPath(p)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !bytes.Equal(jsonBytes(t, rp.All()), want) {
			t.Errorf("%s: loaded corpus differs from source", kind)
		}
	}
	if _, err := dataset.ReadPath(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestCSVWriterStreaming checks batch-by-batch CSV output equals the
// one-shot encoder byte for byte, including the header-only edge.
func TestCSVWriterStreaming(t *testing.T) {
	rs := binaryTestCorpus(t)[:47]
	var want bytes.Buffer
	if err := dataset.WriteCSV(&want, rs); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	cw := dataset.NewCSVWriter(&got)
	for lo := 0; lo < len(rs); lo += 10 {
		hi := lo + 10
		if hi > len(rs) {
			hi = len(rs)
		}
		if err := cw.Append(rs[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("streamed CSV differs from WriteCSV")
	}

	var empty, emptyWant bytes.Buffer
	if err := dataset.NewCSVWriter(&empty).Flush(); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(&emptyWant, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(empty.Bytes(), emptyWant.Bytes()) {
		t.Error("empty streamed CSV differs from WriteCSV(nil)")
	}
}

// TestJSONWriterStreaming checks batch-by-batch JSON output equals the
// one-shot encoder byte for byte for non-empty input.
func TestJSONWriterStreaming(t *testing.T) {
	rs := binaryTestCorpus(t)[:23]
	var want bytes.Buffer
	if err := dataset.WriteJSON(&want, rs); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	jw := dataset.NewJSONWriter(&got)
	for lo := 0; lo < len(rs); lo += 7 {
		hi := lo + 7
		if hi > len(rs) {
			hi = len(rs)
		}
		if err := jw.Append(rs[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("streamed JSON differs from WriteJSON:\nstream %q...\none-shot %q...",
			truncBytes(got.Bytes()), truncBytes(want.Bytes()))
	}

	var empty bytes.Buffer
	jwe := dataset.NewJSONWriter(&empty)
	if err := jwe.Close(); err != nil {
		t.Fatal(err)
	}
	if empty.String() != "[]\n" {
		t.Errorf("empty stream = %q, want []\\n", empty.String())
	}
}

func truncBytes(b []byte) string {
	if len(b) > 120 {
		b = b[:120]
	}
	return fmt.Sprintf("%s", b)
}
