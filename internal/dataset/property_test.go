package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/microarch"
)

// randomResult builds a random plausible (not necessarily compliant)
// result for codec property tests.
func randomResult(rng *rand.Rand, id string) *Result {
	codes := microarch.AllCodenames()
	r := &Result{
		ID:               id,
		Vendor:           "Vendor-" + string(rune('A'+rng.Intn(26))),
		System:           "Sys, with \"quotes\" and, commas",
		FormFactor:       FormFactor(1 + rng.Intn(4)),
		PublishedYear:    2007 + rng.Intn(10),
		PublishedQuarter: 1 + rng.Intn(4),
		HWAvailYear:      2004 + rng.Intn(13),
		HWAvailQuarter:   1 + rng.Intn(4),
		Nodes:            1 + rng.Intn(4),
		CoresPerChip:     1 + rng.Intn(18),
		CPUModel:         "Intel Xeon E5-2620 v3",
		Codename:         codes[rng.Intn(len(codes))],
		NominalGHz:       1.2 + 2.4*rng.Float64(),
		MemoryGB:         float64(1 + rng.Intn(512)),
		JVM:              "JVM\twith tab",
		OS:               "OS with ünïcode",
	}
	r.Chips = r.Nodes * (1 + rng.Intn(2))
	idle := 20 + 100*rng.Float64()
	r.ActiveIdleWatts = idle
	prev := idle
	r.Levels = make([]LoadLevel, 10)
	for i := range r.Levels {
		u := float64(i+1) / 10
		prev += rng.Float64() * 40
		r.Levels[i] = LoadLevel{
			TargetLoad:    u,
			ActualLoad:    u * (1 + 0.01*rng.NormFloat64()),
			OpsPerSec:     (u + 0.001*float64(i)) * 1e6 * (0.5 + rng.Float64()),
			AvgPowerWatts: prev,
		}
	}
	return r
}

func TestCSVRoundTripPropertyRandomResults(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		in := make([]*Result, 1+rng.Intn(5))
		for i := range in {
			in[i] = randomResult(rng, "rt")
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, in); err != nil {
			t.Fatal(err)
		}
		out, err := ReadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v\ncsv:\n%s", trial, err, buf.String())
		}
		if len(out) != len(in) {
			t.Fatalf("trial %d: %d of %d survived", trial, len(out), len(in))
		}
		for i := range in {
			a, b := in[i], out[i]
			if a.Vendor != b.Vendor || a.System != b.System || a.JVM != b.JVM || a.OS != b.OS {
				t.Fatalf("trial %d: string field drift: %+v vs %+v", trial, a, b)
			}
			if a.Codename != b.Codename || a.FormFactor != b.FormFactor {
				t.Fatalf("trial %d: enum drift", trial)
			}
			if a.NominalGHz != b.NominalGHz || a.MemoryGB != b.MemoryGB || a.ActiveIdleWatts != b.ActiveIdleWatts {
				t.Fatalf("trial %d: float drift", trial)
			}
			for j := range a.Levels {
				if a.Levels[j] != b.Levels[j] {
					t.Fatalf("trial %d: level %d drift: %+v vs %+v", trial, j, a.Levels[j], b.Levels[j])
				}
			}
			// Derived metrics survive bit-for-bit.
			if ca, errA := a.Curve(); errA == nil {
				cb, errB := b.Curve()
				if errB != nil {
					t.Fatalf("trial %d: curve lost in round trip", trial)
				}
				if math.Abs(ca.EP()-cb.EP()) > 1e-12 {
					t.Fatalf("trial %d: EP drift", trial)
				}
			}
		}
	}
}

func TestJSONRoundTripPropertyRandomResults(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 30; trial++ {
		in := []*Result{randomResult(rng, "json-rt")}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, in); err != nil {
			t.Fatal(err)
		}
		out, err := ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		a, b := in[0], out[0]
		if a.Vendor != b.Vendor || a.Codename != b.Codename || len(a.Levels) != len(b.Levels) {
			t.Fatalf("trial %d: drift", trial)
		}
		for j := range a.Levels {
			if a.Levels[j] != b.Levels[j] {
				t.Fatalf("trial %d: level %d drift", trial, j)
			}
		}
	}
}

func TestValidateIdempotent(t *testing.T) {
	// Validate must not mutate the result: validating twice gives the
	// same verdict, and the curve afterwards is unchanged.
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 30; trial++ {
		r := randomResult(rng, "idem")
		before := r.Clone()
		err1 := Validate(r)
		err2 := Validate(r)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: verdict changed on revalidation", trial)
		}
		if r.ActiveIdleWatts != before.ActiveIdleWatts || len(r.Levels) != len(before.Levels) {
			t.Fatalf("trial %d: Validate mutated the result", trial)
		}
		for j := range r.Levels {
			if r.Levels[j] != before.Levels[j] {
				t.Fatalf("trial %d: Validate mutated level %d", trial, j)
			}
		}
	}
}
