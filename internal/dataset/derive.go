package dataset

import (
	"math"

	"repro/internal/core"
	"repro/internal/par"
)

// This file is the columnar metric kernel: it fills the derived metric
// layer straight from the raw struct-of-arrays columns, without
// materializing *Result views or building core.Curve values. Every
// float operation replicates the core.Curve accessors operand for
// operand (same order, same associativity), so the columns it produces
// are bit-identical to the Result/curve path — the differential tests
// in derive_test.go pin this on valid, invalid and non-compliant rows.
// At fleet scale this is what keeps a cold million-row metric build in
// the hundreds of milliseconds instead of tens of seconds.

// fillDerivedColumnar computes d from the raw columns in parallel.
// Callers hold cs.mu and publish d afterwards.
func (cs *ColumnStore) fillDerivedColumnar(d *derivedColumns) {
	n := cs.n
	// Pass 1: per-row scalars; each row's peak-spot count lands in
	// spotOff[i+1] for the sequential prefix sum below.
	chunks := par.Chunks(n)
	par.ForEach(len(chunks), func(ci int) {
		for i := chunks[ci].Lo; i < chunks[ci].Hi; i++ {
			d.spotOff[i+1] = int32(cs.deriveRow(i, d))
		}
	})
	total := 0
	d.allCurvesOK, d.allCompliant = true, true
	for i := 0; i < n; i++ {
		total += int(d.spotOff[i+1])
		d.spotOff[i+1] = int32(total)
		d.allCurvesOK = d.allCurvesOK && d.curveOK[i]
		d.allCompliant = d.allCompliant && d.compliant[i]
	}
	// Pass 2: flatten the peak-efficiency spots. Rows own disjoint
	// [spotOff[i], spotOff[i+1]) ranges, so the fill parallelizes too.
	d.spots = make([]float64, total)
	par.ForEach(len(chunks), func(ci int) {
		for i := chunks[ci].Lo; i < chunks[ci].Hi; i++ {
			pos := d.spotOff[i]
			if d.spotOff[i+1] == pos {
				continue
			}
			lo, hi := cs.levelOff[i], cs.levelOff[i+1]
			thresh := d.peakEEs[i] * (1 - core.PeakEETolerance)
			for j := lo; j < hi; j++ {
				if levelEEAt(cs.levelOps[j], cs.levelPower[j]) >= thresh {
					d.spots[pos] = cs.levelTarget[j]
					pos++
				}
			}
		}
	})
}

// levelEEAt is Point.EE on column values: ops per watt, zero when power
// is not positive.
func levelEEAt(ops, watts float64) float64 {
	if watts <= 0 {
		return 0
	}
	return ops / watts
}

// deriveRow computes row i's scalar metrics, validity and compliance
// flags, and per-level efficiencies, returning the number of
// peak-efficiency spots (PeakEE ties included). Metrics stay zero for
// rows whose curve fails core.NewCurve validation, matching the
// zero-on-invalid contract of the memoized Result bundle.
func (cs *ColumnStore) deriveRow(i int, d *derivedColumns) (spots int) {
	lo, hi := cs.levelOff[i], cs.levelOff[i+1]
	nl := int(hi - lo)
	idleW := cs.idleWatts[i]

	for j := lo; j < hi; j++ {
		if w := cs.levelPower[j]; w > 0 {
			d.levelEE[j] = cs.levelOps[j] / w
		}
	}

	ok := cs.curveValid(lo, hi, idleW)
	d.curveOK[i] = ok
	d.compliant[i] = ok && cs.rowCompliant(i, lo, nl, idleW)
	if !ok {
		return 0
	}

	// Normalized trapezoid area under the power curve (core.Curve
	// normalizedArea): norm = power/peakPower point by point, idle first.
	peakW := cs.levelPower[hi-1]
	var area float64
	prevU, prevN := 0.0, idleW/peakW
	for j := lo; j < hi; j++ {
		u := cs.levelTarget[j]
		nrm := cs.levelPower[j] / peakW
		du := u - prevU
		area += du * (nrm + prevN) / 2
		prevU, prevN = u, nrm
	}
	d.eps[i] = 2 - 2*area

	// Overall efficiency (core.Curve.OverallEE): one loop accumulating
	// ops and watts over all points, active idle included.
	var ops, watts float64
	watts += idleW
	for j := lo; j < hi; j++ {
		ops += cs.levelOps[j]
		watts += cs.levelPower[j]
	}
	if watts > 0 {
		d.ees[i] = ops / watts
	}

	// Peak efficiency and its spots (core.Curve.PeakEE): max over the
	// measured levels, then every level within the tie tolerance.
	var peak float64
	for j := lo; j < hi; j++ {
		if ee := levelEEAt(cs.levelOps[j], cs.levelPower[j]); ee > peak {
			peak = ee
		}
	}
	d.peakEEs[i] = peak
	thresh := peak * (1 - core.PeakEETolerance)
	first := true
	for j := lo; j < hi; j++ {
		if levelEEAt(cs.levelOps[j], cs.levelPower[j]) >= thresh {
			if first {
				d.peakEEUtils[i] = cs.levelTarget[j]
				first = false
			}
			spots++
		}
	}

	idleFrac := idleW / peakW
	d.idleFracs[i] = idleFrac
	d.dynRanges[i] = 1 - idleFrac
	if full := levelEEAt(cs.levelOps[hi-1], cs.levelPower[hi-1]); full > 0 {
		d.peakOverFull[i] = peak / full
	}
	d.linearDevs[i] = area - (idleFrac+1)/2
	return spots
}

// curveValid replicates core.NewCurve validation on the column values
// for the points [active idle, levels lo..hi): at least two points, the
// grid strictly increasing from 0 to 1, positive power everywhere,
// non-negative throughput. The idle point is utilization 0 with zero
// throughput by construction.
func (cs *ColumnStore) curveValid(lo, hi int32, idleW float64) bool {
	if hi-lo < 1 {
		return false
	}
	if cs.levelTarget[hi-1] != 1 {
		return false
	}
	if idleW <= 0 {
		return false
	}
	prevU := 0.0
	for j := lo; j < hi; j++ {
		u := cs.levelTarget[j]
		if u <= prevU {
			return false
		}
		if cs.levelPower[j] <= 0 {
			return false
		}
		if cs.levelOps[j] < 0 {
			return false
		}
		prevU = u
	}
	return true
}

// rowCompliant replicates dataset.Validate on the column values, minus
// the curve check (the caller folds curveOK in).
func (cs *ColumnStore) rowCompliant(i int, lo int32, nl int, idleW float64) bool {
	if cs.ids[i] == "" || nl != 10 {
		return false
	}
	for k := 0; k < nl; k++ {
		j := lo + int32(k)
		want := float64(k+1) / 10
		if math.Abs(cs.levelTarget[j]-want) > 1e-9 {
			return false
		}
		if cs.levelPower[j] <= 0 {
			return false
		}
		if cs.levelOps[j] <= 0 {
			return false
		}
		if math.Abs(cs.levelActual[j]-cs.levelTarget[j]) > loadTolerance {
			return false
		}
		if k > 0 && cs.levelOps[j] <= cs.levelOps[j-1] {
			return false
		}
	}
	if idleW <= 0 || idleW >= cs.levelPower[lo+9] {
		return false
	}
	if y := int(cs.hwYears[i]); y < minHWYear || y > maxHWYear {
		return false
	}
	if y := int(cs.pubYears[i]); y < minPubYear || y > maxPubYear {
		return false
	}
	if q := cs.pubQuarters[i]; q < 1 || q > 4 {
		return false
	}
	if q := cs.hwQuarters[i]; q < 1 || q > 4 {
		return false
	}
	nodes := int(cs.nodes[i])
	if nodes < 1 {
		return false
	}
	if chips := int(cs.chips[i]); chips < 1 || chips%nodes != 0 {
		return false
	}
	if cs.coresPerChip[i] < 1 {
		return false
	}
	if cs.memoryGB[i] <= 0 {
		return false
	}
	return true
}
