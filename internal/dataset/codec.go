package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/microarch"
)

// csvHeader is the flat CSV schema: one row per result, with the ten
// load levels flattened into power/ops/actual-load column triples.
var csvHeader = buildCSVHeader()

func buildCSVHeader() []string {
	h := []string{
		"id", "vendor", "system", "form_factor",
		"published_year", "published_quarter", "hw_avail_year", "hw_avail_quarter",
		"nodes", "chips", "cores_per_chip", "cpu_model", "codename", "nominal_ghz",
		"memory_gb", "jvm", "os", "active_idle_watts",
	}
	for i := 1; i <= 10; i++ {
		h = append(h,
			fmt.Sprintf("power_%d0", i),
			fmt.Sprintf("ops_%d0", i),
			fmt.Sprintf("actual_load_%d0", i),
		)
	}
	return h
}

// WriteCSV writes the results as CSV with a header row.
func WriteCSV(w io.Writer, results []*Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	for _, r := range results {
		if err := cw.Write(toCSVRow(r)); err != nil {
			return fmt.Errorf("dataset: write csv row %s: %w", r.ID, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flush csv: %w", err)
	}
	return nil
}

func toCSVRow(r *Result) []string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	d := strconv.Itoa
	row := []string{
		r.ID, r.Vendor, r.System, r.FormFactor.String(),
		d(r.PublishedYear), d(r.PublishedQuarter), d(r.HWAvailYear), d(r.HWAvailQuarter),
		d(r.Nodes), d(r.Chips), d(r.CoresPerChip), r.CPUModel, r.Codename.String(), f(r.NominalGHz),
		f(r.MemoryGB), r.JVM, r.OS, f(r.ActiveIdleWatts),
	}
	for i := 0; i < 10; i++ {
		var lv LoadLevel
		if i < len(r.Levels) {
			lv = r.Levels[i]
		}
		row = append(row, f(lv.AvgPowerWatts), f(lv.OpsPerSec), f(lv.ActualLoad))
	}
	return row
}

// ReadCSV parses results written by WriteCSV. It validates the header
// and field count but not compliance; run Validate/Repository.Valid for
// that.
func ReadCSV(r io.Reader) ([]*Result, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("dataset: csv header column %d is %q, want %q", i, header[i], want)
		}
	}
	var out []*Result
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv line %d: %w", line, err)
		}
		res, err := fromCSVRow(row)
		if err != nil {
			return nil, fmt.Errorf("dataset: parse csv line %d: %w", line, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func fromCSVRow(row []string) (*Result, error) {
	var (
		r    Result
		errs []error
	)
	geti := func(s, name string) int {
		v, err := strconv.Atoi(s)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
		}
		return v
	}
	getf := func(s, name string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
		}
		return v
	}
	r.ID, r.Vendor, r.System = row[0], row[1], row[2]
	ff, err := ParseFormFactor(row[3])
	if err != nil {
		errs = append(errs, err)
	}
	r.FormFactor = ff
	r.PublishedYear = geti(row[4], "published_year")
	r.PublishedQuarter = geti(row[5], "published_quarter")
	r.HWAvailYear = geti(row[6], "hw_avail_year")
	r.HWAvailQuarter = geti(row[7], "hw_avail_quarter")
	r.Nodes = geti(row[8], "nodes")
	r.Chips = geti(row[9], "chips")
	r.CoresPerChip = geti(row[10], "cores_per_chip")
	r.CPUModel = row[11]
	cn, err := microarch.ParseCodename(row[12])
	if err != nil {
		// Unknown codenames are data, not corruption: keep the fallback.
		cn = microarch.UnknownCodename
	}
	r.Codename = cn
	r.NominalGHz = getf(row[13], "nominal_ghz")
	r.MemoryGB = getf(row[14], "memory_gb")
	r.JVM, r.OS = row[15], row[16]
	r.ActiveIdleWatts = getf(row[17], "active_idle_watts")
	r.Levels = make([]LoadLevel, 10)
	for i := 0; i < 10; i++ {
		base := 18 + 3*i
		r.Levels[i] = LoadLevel{
			TargetLoad:    float64(i+1) / 10,
			AvgPowerWatts: getf(row[base], "power"),
			OpsPerSec:     getf(row[base+1], "ops"),
			ActualLoad:    getf(row[base+2], "actual_load"),
		}
	}
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return &r, nil
}

// WriteJSON writes the results as a JSON array (indented).
func WriteJSON(w io.Writer, results []*Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return fmt.Errorf("dataset: encode json: %w", err)
	}
	return nil
}

// ReadJSON parses a JSON array of results.
func ReadJSON(r io.Reader) ([]*Result, error) {
	var out []*Result
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("dataset: decode json: %w", err)
	}
	return out, nil
}
