package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/microarch"
)

// csvHeader is the flat CSV schema: one row per result, with the ten
// load levels flattened into power/ops/actual-load column triples.
var csvHeader = buildCSVHeader()

func buildCSVHeader() []string {
	h := []string{
		"id", "vendor", "system", "form_factor",
		"published_year", "published_quarter", "hw_avail_year", "hw_avail_quarter",
		"nodes", "chips", "cores_per_chip", "cpu_model", "codename", "nominal_ghz",
		"memory_gb", "jvm", "os", "active_idle_watts",
	}
	for i := 1; i <= 10; i++ {
		h = append(h,
			fmt.Sprintf("power_%d0", i),
			fmt.Sprintf("ops_%d0", i),
			fmt.Sprintf("actual_load_%d0", i),
		)
	}
	return h
}

// WriteCSV writes the results as CSV with a header row.
func WriteCSV(w io.Writer, results []*Result) error {
	cw := NewCSVWriter(w)
	if err := cw.Append(results); err != nil {
		return err
	}
	return cw.Flush()
}

// CSVWriter streams results to CSV batch by batch, writing the header
// exactly once — the streaming face of WriteCSV for fleet-scale
// generation, where the corpus never exists in memory at once. The
// concatenation of all Append batches produces byte-identical output to
// a single WriteCSV call over the combined slice.
type CSVWriter struct {
	cw          *csv.Writer
	wroteHeader bool
}

// NewCSVWriter wraps w in a streaming CSV writer.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{cw: csv.NewWriter(w)}
}

func (c *CSVWriter) header() error {
	if c.wroteHeader {
		return nil
	}
	c.wroteHeader = true
	if err := c.cw.Write(csvHeader); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	return nil
}

// Append writes one batch of rows (and the header, on the first call).
func (c *CSVWriter) Append(results []*Result) error {
	if err := c.header(); err != nil {
		return err
	}
	for _, r := range results {
		if err := c.cw.Write(toCSVRow(r)); err != nil {
			return fmt.Errorf("dataset: write csv row %s: %w", r.ID, err)
		}
	}
	return nil
}

// Flush drains the writer (emitting the header if no batch did) and
// reports any deferred write error.
func (c *CSVWriter) Flush() error {
	if err := c.header(); err != nil {
		return err
	}
	c.cw.Flush()
	if err := c.cw.Error(); err != nil {
		return fmt.Errorf("dataset: flush csv: %w", err)
	}
	return nil
}

func toCSVRow(r *Result) []string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	d := strconv.Itoa
	row := []string{
		r.ID, r.Vendor, r.System, r.FormFactor.String(),
		d(r.PublishedYear), d(r.PublishedQuarter), d(r.HWAvailYear), d(r.HWAvailQuarter),
		d(r.Nodes), d(r.Chips), d(r.CoresPerChip), r.CPUModel, r.Codename.String(), f(r.NominalGHz),
		f(r.MemoryGB), r.JVM, r.OS, f(r.ActiveIdleWatts),
	}
	for i := 0; i < 10; i++ {
		var lv LoadLevel
		if i < len(r.Levels) {
			lv = r.Levels[i]
		}
		row = append(row, f(lv.AvgPowerWatts), f(lv.OpsPerSec), f(lv.ActualLoad))
	}
	return row
}

// ReadCSV parses results written by WriteCSV. It validates the header
// and field count but not compliance; run Validate/Repository.Valid for
// that.
func ReadCSV(r io.Reader) ([]*Result, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("dataset: csv header column %d is %q, want %q", i, header[i], want)
		}
	}
	var out []*Result
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv line %d: %w", line, err)
		}
		res, err := fromCSVRow(row)
		if err != nil {
			return nil, fmt.Errorf("dataset: parse csv line %d: %w", line, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func fromCSVRow(row []string) (*Result, error) {
	var (
		r    Result
		errs []error
	)
	geti := func(s, name string) int {
		v, err := strconv.Atoi(s)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
		}
		return v
	}
	getf := func(s, name string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
		}
		return v
	}
	r.ID, r.Vendor, r.System = row[0], row[1], row[2]
	ff, err := ParseFormFactor(row[3])
	if err != nil {
		errs = append(errs, err)
	}
	r.FormFactor = ff
	r.PublishedYear = geti(row[4], "published_year")
	r.PublishedQuarter = geti(row[5], "published_quarter")
	r.HWAvailYear = geti(row[6], "hw_avail_year")
	r.HWAvailQuarter = geti(row[7], "hw_avail_quarter")
	r.Nodes = geti(row[8], "nodes")
	r.Chips = geti(row[9], "chips")
	r.CoresPerChip = geti(row[10], "cores_per_chip")
	r.CPUModel = row[11]
	cn, err := microarch.ParseCodename(row[12])
	if err != nil {
		// Unknown codenames are data, not corruption: keep the fallback.
		cn = microarch.UnknownCodename
	}
	r.Codename = cn
	r.NominalGHz = getf(row[13], "nominal_ghz")
	r.MemoryGB = getf(row[14], "memory_gb")
	r.JVM, r.OS = row[15], row[16]
	r.ActiveIdleWatts = getf(row[17], "active_idle_watts")
	r.Levels = make([]LoadLevel, 10)
	for i := 0; i < 10; i++ {
		base := 18 + 3*i
		r.Levels[i] = LoadLevel{
			TargetLoad:    float64(i+1) / 10,
			AvgPowerWatts: getf(row[base], "power"),
			OpsPerSec:     getf(row[base+1], "ops"),
			ActualLoad:    getf(row[base+2], "actual_load"),
		}
	}
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return &r, nil
}

// WriteJSON writes the results as a JSON array (indented).
func WriteJSON(w io.Writer, results []*Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return fmt.Errorf("dataset: encode json: %w", err)
	}
	return nil
}

// JSONWriter streams results as an indented JSON array batch by batch
// — the streaming face of WriteJSON. For any non-empty sequence of
// batches the concatenated output is byte-identical to WriteJSON over
// the combined slice; an empty stream closes as "[]".
type JSONWriter struct {
	w    io.Writer
	rows int
}

// NewJSONWriter wraps w in a streaming JSON array writer.
func NewJSONWriter(w io.Writer) *JSONWriter {
	return &JSONWriter{w: w}
}

// Append encodes one batch of results into the array.
func (j *JSONWriter) Append(results []*Result) error {
	for _, r := range results {
		sep := ",\n  "
		if j.rows == 0 {
			sep = "[\n  "
		}
		// MarshalIndent with a two-space prefix renders the element
		// exactly as encoding/json renders it at depth 1 inside an
		// indented array, so batches concatenate to WriteJSON's bytes.
		b, err := json.MarshalIndent(r, "  ", "  ")
		if err != nil {
			return fmt.Errorf("dataset: encode json %s: %w", r.ID, err)
		}
		if _, err := io.WriteString(j.w, sep); err != nil {
			return fmt.Errorf("dataset: write json: %w", err)
		}
		if _, err := j.w.Write(b); err != nil {
			return fmt.Errorf("dataset: write json: %w", err)
		}
		j.rows++
	}
	return nil
}

// Close terminates the array.
func (j *JSONWriter) Close() error {
	tail := "\n]\n"
	if j.rows == 0 {
		tail = "[]\n"
	}
	if _, err := io.WriteString(j.w, tail); err != nil {
		return fmt.Errorf("dataset: write json: %w", err)
	}
	return nil
}

// ReadJSON parses a JSON array of results.
func ReadJSON(r io.Reader) ([]*Result, error) {
	var out []*Result
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("dataset: decode json: %w", err)
	}
	return out, nil
}
