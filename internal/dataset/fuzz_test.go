package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hardens the CSV reader against arbitrary input: it must
// either return an error or a well-formed result slice — never panic —
// and everything it accepts must survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteCSV(&seed, []*Result{fuzzSeedResult()}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add("id,vendor\nx,y\n")
	f.Add(strings.Repeat(",", 47) + "\n")
	f.Add(seed.String() + "garbage line without enough commas\n")
	f.Fuzz(func(t *testing.T, input string) {
		results, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, r := range results {
			if r == nil {
				t.Fatal("nil result from successful parse")
			}
			if len(r.Levels) != 10 {
				t.Fatalf("parsed result with %d levels", len(r.Levels))
			}
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, results); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(results) {
			t.Fatalf("round trip lost results: %d vs %d", len(back), len(results))
		}
	})
}

// FuzzReadJSON hardens the JSON reader the same way.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteJSON(&seed, []*Result{fuzzSeedResult()}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("[]")
	f.Add("null")
	f.Add(`[{"id":"x"}]`)
	f.Add("{")
	f.Fuzz(func(t *testing.T, input string) {
		results, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, r := range results {
			if r == nil {
				continue // JSON null elements decode to nil pointers
			}
			// Derived metrics must never panic on decoded data.
			_ = r.EP()
			_ = r.OverallEE()
			_ = r.MemoryPerCore()
			_ = IsCompliant(r)
		}
	})
}

func fuzzSeedResult() *Result {
	r := &Result{
		ID:               "fuzz-seed",
		Vendor:           "V",
		System:           "S",
		FormFactor:       FormRack,
		PublishedYear:    2015,
		PublishedQuarter: 1,
		HWAvailYear:      2015,
		HWAvailQuarter:   1,
		Nodes:            1,
		Chips:            2,
		CoresPerChip:     8,
		CPUModel:         "Intel Xeon E5-2640 v3",
		NominalGHz:       2.6,
		MemoryGB:         32,
		JVM:              "J",
		OS:               "O",
		ActiveIdleWatts:  45,
	}
	r.Levels = make([]LoadLevel, 10)
	for i := range r.Levels {
		u := float64(i+1) / 10
		r.Levels[i] = LoadLevel{TargetLoad: u, ActualLoad: u, OpsPerSec: u * 1e6, AvgPowerWatts: 45 + 255*u}
	}
	return r
}
