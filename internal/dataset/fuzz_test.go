package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hardens the CSV reader against arbitrary input: it must
// either return an error or a well-formed result slice — never panic —
// and everything it accepts must survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteCSV(&seed, []*Result{fuzzSeedResult()}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add("id,vendor\nx,y\n")
	f.Add(strings.Repeat(",", 47) + "\n")
	f.Add(seed.String() + "garbage line without enough commas\n")
	f.Fuzz(func(t *testing.T, input string) {
		results, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, r := range results {
			if r == nil {
				t.Fatal("nil result from successful parse")
			}
			if len(r.Levels) != 10 {
				t.Fatalf("parsed result with %d levels", len(r.Levels))
			}
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, results); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(results) {
			t.Fatalf("round trip lost results: %d vs %d", len(back), len(results))
		}
	})
}

// FuzzReadJSON hardens the JSON reader the same way.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteJSON(&seed, []*Result{fuzzSeedResult()}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("[]")
	f.Add("null")
	f.Add(`[{"id":"x"}]`)
	f.Add("{")
	f.Fuzz(func(t *testing.T, input string) {
		results, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, r := range results {
			if r == nil {
				continue // JSON null elements decode to nil pointers
			}
			// Derived metrics must never panic on decoded data.
			_ = r.EP()
			_ = r.OverallEE()
			_ = r.MemoryPerCore()
			_ = IsCompliant(r)
		}
	})
}

// FuzzReadBinary hardens both binary layouts: arbitrary bytes must
// either fail cleanly or decode to a corpus that re-encodes and
// round-trips in both v1 and v2 — never panic, never allocate
// unboundedly (the per-record/per-section caps are what this fuzz
// exercises).
func FuzzReadBinary(f *testing.F) {
	rs := []*Result{fuzzSeedResult()}
	var v1 bytes.Buffer
	if err := WriteBinary(&v1, rs); err != nil {
		f.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := WriteColumns(&v2, BuildColumns(rs)); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add([]byte{})
	f.Add([]byte("EPFB"))
	f.Add(append([]byte("EPFB\x01"), 0xFF, 0xFF, 0xFF, 0xFF, 0x0F))       // huge v1 record length
	f.Add(append([]byte("EPFB\x02"), 0xFF, 0xFF, 0xFF, 0xFF, 0x7F))       // huge v2 row count
	f.Add(append([]byte("EPFB\x02\x01\x01\x01"), 0xFF, 0xFF, 0xFF, 0x7F)) // huge v2 section size
	f.Add(v1.Bytes()[:v1.Len()-3])
	f.Add(v2.Bytes()[:v2.Len()-3])
	f.Fuzz(func(t *testing.T, input []byte) {
		// The streaming and in-memory columnar entry points share the
		// decode logic but not the framing walk: they must accept
		// exactly the same inputs and produce identical stores.
		cs1, err1 := ReadColumns(bytes.NewReader(input))
		cs2, err2 := ReadColumnsBytes(input)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("ReadColumns err=%v, ReadColumnsBytes err=%v", err1, err2)
		}
		if err1 == nil {
			var b1, b2 bytes.Buffer
			if err := WriteColumns(&b1, cs1); err != nil {
				t.Fatal(err)
			}
			if err := WriteColumns(&b2, cs2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Fatal("streaming and in-memory columnar decodes differ")
			}
		}
		results, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			// The columnar entry points must agree that the input is bad
			// or decode it without panicking; they may be stricter (they
			// validate column alignment), never more lenient in a way
			// that panics.
			if err1 == nil {
				_ = cs1.Materialize()
			}
			return
		}
		for _, r := range results {
			if r == nil {
				t.Fatal("nil result from successful parse")
			}
			_ = r.EP()
			_ = IsCompliant(r)
		}
		var re1 bytes.Buffer
		if err := WriteBinary(&re1, results); err != nil {
			t.Fatalf("v1 re-encode failed: %v", err)
		}
		back, err := ReadBinary(bytes.NewReader(re1.Bytes()))
		if err != nil || len(back) != len(results) {
			t.Fatalf("v1 round trip failed: %v (%d vs %d)", err, len(back), len(results))
		}
		var re2 bytes.Buffer
		if err := WriteColumns(&re2, buildRawColumns(results)); err != nil {
			t.Fatalf("v2 re-encode failed: %v", err)
		}
		cs, err := ReadColumns(bytes.NewReader(re2.Bytes()))
		if err != nil || cs.Len() != len(results) {
			n := -1
			if cs != nil {
				n = cs.Len()
			}
			t.Fatalf("v2 round trip failed: %v (%d vs %d)", err, n, len(results))
		}
	})
}

func fuzzSeedResult() *Result {
	r := &Result{
		ID:               "fuzz-seed",
		Vendor:           "V",
		System:           "S",
		FormFactor:       FormRack,
		PublishedYear:    2015,
		PublishedQuarter: 1,
		HWAvailYear:      2015,
		HWAvailQuarter:   1,
		Nodes:            1,
		Chips:            2,
		CoresPerChip:     8,
		CPUModel:         "Intel Xeon E5-2640 v3",
		NominalGHz:       2.6,
		MemoryGB:         32,
		JVM:              "J",
		OS:               "O",
		ActiveIdleWatts:  45,
	}
	r.Levels = make([]LoadLevel, 10)
	for i := range r.Levels {
		u := float64(i+1) / 10
		r.Levels[i] = LoadLevel{TargetLoad: u, ActualLoad: u, OpsPerSec: u * 1e6, AvgPowerWatts: 45 + 255*u}
	}
	return r
}
