package dataset

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/microarch"
)

// validResult builds a compliant linear-power result for tests.
func validResult(id string) *Result {
	r := &Result{
		ID:               id,
		Vendor:           "Acme Systems",
		System:           "Acme R2000",
		FormFactor:       FormRack,
		PublishedYear:    2015,
		PublishedQuarter: 2,
		HWAvailYear:      2015,
		HWAvailQuarter:   1,
		Nodes:            1,
		Chips:            2,
		CoresPerChip:     8,
		CPUModel:         "Intel Xeon E5-2640 v3",
		Codename:         microarch.Haswell,
		NominalGHz:       2.6,
		MemoryGB:         32,
		JVM:              "AcmeJDK 8",
		OS:               "AcmeLinux 7",
		ActiveIdleWatts:  45,
	}
	r.Levels = make([]LoadLevel, 10)
	for i := 0; i < 10; i++ {
		u := float64(i+1) / 10
		r.Levels[i] = LoadLevel{
			TargetLoad:    u,
			ActualLoad:    u + 0.005,
			OpsPerSec:     1e6 * u,
			AvgPowerWatts: 45 + 255*u,
		}
	}
	return r
}

func TestResultDerivedFields(t *testing.T) {
	r := validResult("r1")
	if got := r.TotalCores(); got != 16 {
		t.Errorf("TotalCores = %d, want 16", got)
	}
	if got := r.MemoryPerCore(); got != 2 {
		t.Errorf("MemoryPerCore = %v, want 2", got)
	}
	if got := r.ChipsPerNode(); got != 2 {
		t.Errorf("ChipsPerNode = %d, want 2", got)
	}
	zero := &Result{}
	if zero.MemoryPerCore() != 0 || zero.ChipsPerNode() != 0 {
		t.Error("zero-value result should not divide by zero")
	}
}

func TestResultCurveAndMetrics(t *testing.T) {
	r := validResult("r1")
	c, err := r.Curve()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLevels() != 11 {
		t.Errorf("NumLevels = %d", c.NumLevels())
	}
	// Linear curve with idle fraction 45/300 = 0.15 → EP = 0.85.
	if ep := r.EP(); math.Abs(ep-0.85) > 1e-9 {
		t.Errorf("EP = %v, want 0.85", ep)
	}
	if r.OverallEE() <= 0 {
		t.Error("OverallEE should be positive")
	}
}

func TestResultCurveInvalid(t *testing.T) {
	r := validResult("bad")
	r.Levels = r.Levels[:5]
	if _, err := r.Curve(); err == nil {
		t.Error("truncated levels: expected curve error")
	}
	if r.EP() != 0 || r.OverallEE() != 0 {
		t.Error("invalid curve should yield zero metrics")
	}
}

func TestMustCurvePanics(t *testing.T) {
	r := validResult("bad")
	r.ActiveIdleWatts = -1
	defer func() {
		if recover() == nil {
			t.Fatal("MustCurve on invalid result did not panic")
		}
	}()
	r.MustCurve()
}

func TestClone(t *testing.T) {
	r := validResult("r1")
	c := r.Clone()
	c.Levels[0].AvgPowerWatts = 1
	c.Vendor = "Other"
	if r.Levels[0].AvgPowerWatts == 1 || r.Vendor == "Other" {
		t.Error("Clone shares state with original")
	}
}

func TestValidateAcceptsCompliant(t *testing.T) {
	if err := Validate(validResult("ok")); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Result)
	}{
		{"missing id", func(r *Result) { r.ID = "" }},
		{"nine levels", func(r *Result) { r.Levels = r.Levels[:9] }},
		{"wrong target", func(r *Result) { r.Levels[3].TargetLoad = 0.45 }},
		{"zero power", func(r *Result) { r.Levels[2].AvgPowerWatts = 0 }},
		{"zero ops", func(r *Result) { r.Levels[2].OpsPerSec = 0 }},
		{"load deviation", func(r *Result) { r.Levels[4].ActualLoad = 0.6 }},
		{"ops not increasing", func(r *Result) { r.Levels[5].OpsPerSec = r.Levels[4].OpsPerSec }},
		{"zero idle", func(r *Result) { r.ActiveIdleWatts = 0 }},
		{"idle above peak", func(r *Result) { r.ActiveIdleWatts = 1000 }},
		{"hw year early", func(r *Result) { r.HWAvailYear = 2003 }},
		{"hw year late", func(r *Result) { r.HWAvailYear = 2017 }},
		{"pub year early", func(r *Result) { r.PublishedYear = 2006 }},
		{"pub quarter", func(r *Result) { r.PublishedQuarter = 5 }},
		{"hw quarter", func(r *Result) { r.HWAvailQuarter = 0 }},
		{"zero nodes", func(r *Result) { r.Nodes = 0 }},
		{"chips not multiple", func(r *Result) { r.Nodes = 3; r.Chips = 4 }},
		{"zero cores", func(r *Result) { r.CoresPerChip = 0 }},
		{"zero memory", func(r *Result) { r.MemoryGB = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := validResult("x")
			tt.mutate(r)
			err := Validate(r)
			if err == nil {
				t.Fatal("expected rejection")
			}
			if !errors.Is(err, ErrNonCompliant) {
				t.Fatalf("error %v does not wrap ErrNonCompliant", err)
			}
			if IsCompliant(r) {
				t.Error("IsCompliant disagrees with Validate")
			}
		})
	}
}

func TestRepositoryFilters(t *testing.T) {
	a := validResult("a") // 2015, 1 node
	b := validResult("b")
	b.HWAvailYear = 2012
	b.PublishedYear = 2013
	b.Nodes = 4
	b.Chips = 4
	c := validResult("c")
	c.ActiveIdleWatts = 0 // non-compliant

	rp := NewRepository([]*Result{a, b})
	rp.Add(c)
	if rp.Len() != 3 {
		t.Fatalf("Len = %d", rp.Len())
	}
	if got := rp.Valid().Len(); got != 2 {
		t.Errorf("Valid = %d, want 2", got)
	}
	if got := rp.NonCompliant().Len(); got != 1 {
		t.Errorf("NonCompliant = %d, want 1", got)
	}
	if got := rp.SingleNode().Len(); got != 2 {
		t.Errorf("SingleNode = %d, want 2", got)
	}
	if got := rp.MultiNode().Len(); got != 1 {
		t.Errorf("MultiNode = %d, want 1", got)
	}
	if got := rp.YearRange(2012, 2012).Len(); got != 1 {
		t.Errorf("YearRange = %d, want 1", got)
	}
	if got := rp.YearMismatched().Len(); got != 1 {
		t.Errorf("YearMismatched = %d, want 1", got)
	}
}

func TestRepositoryGroupings(t *testing.T) {
	a := validResult("a")
	b := validResult("b")
	b.HWAvailYear = 2012
	b.Codename = microarch.SandyBridgeEP
	b.Chips = 4
	rp := NewRepository([]*Result{a, b})

	byYear := rp.ByHWYear()
	if len(byYear[2015]) != 1 || len(byYear[2012]) != 1 {
		t.Errorf("ByHWYear = %v", byYear)
	}
	byFam := rp.ByFamily()
	if len(byFam[microarch.FamilyHaswell]) != 1 || len(byFam[microarch.FamilySandyBridge]) != 1 {
		t.Errorf("ByFamily sizes wrong")
	}
	byCode := rp.ByCodename()
	if len(byCode[microarch.Haswell]) != 1 {
		t.Errorf("ByCodename sizes wrong")
	}
	byChips := rp.ByChips()
	if len(byChips[2]) != 1 || len(byChips[4]) != 1 {
		t.Errorf("ByChips sizes wrong")
	}
	years := rp.HWYears()
	if len(years) != 2 || years[0] != 2012 || years[1] != 2015 {
		t.Errorf("HWYears = %v", years)
	}
}

func TestRepositoryMetricsAndSort(t *testing.T) {
	a := validResult("a") // EP 0.85
	b := validResult("b")
	for i := range b.Levels {
		b.Levels[i].AvgPowerWatts = 300 // flat power → EP 0
	}
	b.ActiveIdleWatts = 299
	rp := NewRepository([]*Result{a, b})
	eps := rp.EPs()
	if len(eps) != 2 || eps[0] <= eps[1] {
		t.Errorf("EPs = %v", eps)
	}
	sorted := rp.SortByEP()
	if sorted[0].ID != "b" || sorted[1].ID != "a" {
		t.Errorf("SortByEP order = %s, %s", sorted[0].ID, sorted[1].ID)
	}
	ees := rp.OverallEEs()
	if len(ees) != 2 || ees[0] <= ees[1] {
		t.Errorf("OverallEEs = %v", ees)
	}
}

func TestRepositoryAllIsCopy(t *testing.T) {
	rp := NewRepository([]*Result{validResult("a")})
	all := rp.All()
	all[0] = nil
	if rp.All()[0] == nil {
		t.Error("All() exposes internal slice")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := []*Result{validResult("r1"), validResult("r2")}
	in[1].Codename = microarch.UnknownCodename
	in[1].FormFactor = FormMultiNode
	in[1].Nodes = 2
	in[1].Chips = 4

	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("round trip count = %d", len(out))
	}
	for i := range in {
		if in[i].ID != out[i].ID || in[i].Codename != out[i].Codename ||
			in[i].FormFactor != out[i].FormFactor || in[i].Nodes != out[i].Nodes {
			t.Errorf("result %d metadata mismatch: %+v vs %+v", i, in[i], out[i])
		}
		if math.Abs(in[i].EP()-out[i].EP()) > 1e-12 {
			t.Errorf("result %d EP drifted across CSV round trip", i)
		}
		for j := range in[i].Levels {
			if in[i].Levels[j] != out[i].Levels[j] {
				t.Errorf("result %d level %d mismatch", i, j)
			}
		}
	}
}

func TestCSVRejectsBadHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("foo,bar\n")); err == nil {
		t.Error("bad header accepted")
	}
}

func TestCSVRejectsBadField(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Result{validResult("r1")}); err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(buf.String(), "2015", "not-a-year", 1)
	if _, err := ReadCSV(strings.NewReader(corrupted)); err == nil {
		t.Error("corrupt year accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := []*Result{validResult("r1")}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].ID != "r1" || len(out[0].Levels) != 10 {
		t.Fatalf("round trip = %+v", out)
	}
	if math.Abs(in[0].EP()-out[0].EP()) > 1e-12 {
		t.Error("EP drifted across JSON round trip")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Error("garbage JSON accepted")
	}
}

func TestFormFactorRoundTrip(t *testing.T) {
	for _, f := range []FormFactor{FormRack, FormTower, FormBlade, FormMultiNode} {
		got, err := ParseFormFactor(f.String())
		if err != nil || got != f {
			t.Errorf("round trip %v: got %v, err %v", f, got, err)
		}
	}
	if FormFactor(99).String() != "Unknown" {
		t.Error("unknown form factor String")
	}
	if _, err := ParseFormFactor("Mainframe"); err == nil {
		t.Error("unknown form factor accepted")
	}
}

func TestMergeDeduplicates(t *testing.T) {
	a := NewRepository([]*Result{validResult("x"), validResult("y")})
	b := NewRepository([]*Result{validResult("y"), validResult("z")})
	merged := Merge(a, b, nil)
	if merged.Len() != 3 {
		t.Fatalf("merged = %d, want 3", merged.Len())
	}
	ids := merged.IDs()
	want := []string{"x", "y", "z"}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("ids = %v, want %v", ids, want)
			break
		}
	}
	// First occurrence wins.
	if merged.FindByID("y") != a.All()[1] {
		t.Error("dedup did not keep the first occurrence")
	}
	if merged.FindByID("nope") != nil {
		t.Error("FindByID invented a result")
	}
}
