package dataset

import (
	"sort"
	"sync"

	"repro/internal/microarch"
	"repro/internal/par"
)

// Repository is an in-memory collection of results with the filtering
// and grouping operations the analyses use. It stores pointers; callers
// must not mutate results after adding them.
//
// The repository precomputes per-metric columns (EP, overall EE, peak
// EE and its utilization, idle fraction, dynamic range) on first use;
// EPs, OverallEEs, SortByEP, and the column accessors then read cached
// float slices instead of rebuilding curves. Add invalidates the
// columns; concurrent readers are safe, concurrent mutation is not.
type Repository struct {
	results []*Result

	mu   sync.Mutex
	cols *columns
}

// columns holds the precomputed metric slices, index-aligned with the
// repository's result order.
type columns struct {
	eps          []float64
	ees          []float64
	peakEEs      []float64
	peakEEUtils  []float64
	idleFracs    []float64
	dynRanges    []float64
	peakOverFull []float64
}

// NewRepository builds a repository over the given results.
func NewRepository(results []*Result) *Repository {
	return &Repository{results: append([]*Result(nil), results...)}
}

// Add appends results and invalidates the precomputed metric columns.
func (rp *Repository) Add(results ...*Result) {
	rp.results = append(rp.results, results...)
	rp.mu.Lock()
	rp.cols = nil
	rp.mu.Unlock()
}

// metricColumns returns the precomputed columns, building them on first
// use. The cold build fans out across CPUs: each result's curve and
// metric bundle is computed once, in parallel, and every later call is
// a cache read.
func (rp *Repository) metricColumns() *columns {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.cols == nil {
		n := len(rp.results)
		c := &columns{
			eps:          make([]float64, n),
			ees:          make([]float64, n),
			peakEEs:      make([]float64, n),
			peakEEUtils:  make([]float64, n),
			idleFracs:    make([]float64, n),
			dynRanges:    make([]float64, n),
			peakOverFull: make([]float64, n),
		}
		par.ForEach(n, func(i int) {
			r := rp.results[i]
			m := r.cached()
			c.eps[i] = m.ep
			c.ees[i] = m.overallEE
			c.peakEEs[i] = m.peakEE
			c.peakEEUtils[i] = r.PeakEEUtilization()
			c.idleFracs[i] = m.idleFraction
			c.dynRanges[i] = m.dynamicRange
			c.peakOverFull[i] = m.peakOverFull
		})
		rp.cols = c
	}
	return rp.cols
}

// Precompute eagerly builds the metric columns (and thereby every
// result's memoized metric bundle) in parallel. It is never required —
// the columns build themselves on first use — but lets callers pay the
// cold cost up front, e.g. before serving queries.
func (rp *Repository) Precompute() {
	rp.metricColumns()
}

func copyColumn(col []float64) []float64 {
	return append([]float64(nil), col...)
}

// Len returns the number of stored results.
func (rp *Repository) Len() int { return len(rp.results) }

// All returns the stored results (shared pointers, fresh slice).
func (rp *Repository) All() []*Result {
	return append([]*Result(nil), rp.results...)
}

// Valid returns a repository containing only compliant results — the
// paper's 517 → 477 step. Validation builds each result's curve, so the
// check fans out across CPUs; repository order is preserved.
func (rp *Repository) Valid() *Repository {
	return rp.filterParallel(func(ok bool) bool { return ok })
}

// NonCompliant returns the results that fail validation.
func (rp *Repository) NonCompliant() *Repository {
	return rp.filterParallel(func(ok bool) bool { return !ok })
}

// filterParallel keeps the results whose compliance verdict satisfies
// keep. IsCompliant is a pure function of the result, so the verdicts
// can be computed in parallel; the sequential pass then preserves order.
func (rp *Repository) filterParallel(keep func(compliant bool) bool) *Repository {
	verdicts := par.Map(len(rp.results), func(i int) bool {
		return IsCompliant(rp.results[i])
	})
	out := make([]*Result, 0, len(rp.results))
	for i, r := range rp.results {
		if keep(verdicts[i]) {
			out = append(out, r)
		}
	}
	return &Repository{results: out}
}

// Filter returns a repository of the results for which keep returns true.
func (rp *Repository) Filter(keep func(*Result) bool) *Repository {
	out := make([]*Result, 0, len(rp.results))
	for _, r := range rp.results {
		if keep(r) {
			out = append(out, r)
		}
	}
	return &Repository{results: out}
}

// SingleNode returns only single-node results.
func (rp *Repository) SingleNode() *Repository {
	return rp.Filter(func(r *Result) bool { return r.Nodes == 1 })
}

// MultiNode returns only results with more than one node.
func (rp *Repository) MultiNode() *Repository {
	return rp.Filter(func(r *Result) bool { return r.Nodes > 1 })
}

// YearRange returns results whose hardware availability year lies in
// [from, to] inclusive.
func (rp *Repository) YearRange(from, to int) *Repository {
	return rp.Filter(func(r *Result) bool {
		return r.HWAvailYear >= from && r.HWAvailYear <= to
	})
}

// ByHWYear groups results by hardware availability year.
func (rp *Repository) ByHWYear() map[int][]*Result {
	return rp.groupInt(func(r *Result) int { return r.HWAvailYear })
}

// ByPublishedYear groups results by the year SPEC published them.
func (rp *Repository) ByPublishedYear() map[int][]*Result {
	return rp.groupInt(func(r *Result) int { return r.PublishedYear })
}

// ByNodes groups results by total node count.
func (rp *Repository) ByNodes() map[int][]*Result {
	return rp.groupInt(func(r *Result) int { return r.Nodes })
}

// ByChips groups results by total chip count.
func (rp *Repository) ByChips() map[int][]*Result {
	return rp.groupInt(func(r *Result) int { return r.Chips })
}

func (rp *Repository) groupInt(key func(*Result) int) map[int][]*Result {
	out := make(map[int][]*Result)
	for _, r := range rp.results {
		k := key(r)
		out[k] = append(out[k], r)
	}
	return out
}

// ByFamily groups results by microarchitecture family (Fig. 6).
func (rp *Repository) ByFamily() map[microarch.Family][]*Result {
	out := make(map[microarch.Family][]*Result)
	for _, r := range rp.results {
		f := r.Codename.Family()
		out[f] = append(out[f], r)
	}
	return out
}

// ByCodename groups results by processor codename (Fig. 7).
func (rp *Repository) ByCodename() map[microarch.Codename][]*Result {
	out := make(map[microarch.Codename][]*Result)
	for _, r := range rp.results {
		out[r.Codename] = append(out[r.Codename], r)
	}
	return out
}

// HWYears returns the distinct hardware availability years in ascending
// order.
func (rp *Repository) HWYears() []int {
	seen := make(map[int]bool)
	for _, r := range rp.results {
		seen[r.HWAvailYear] = true
	}
	years := make([]int, 0, len(seen))
	for y := range seen {
		years = append(years, y)
	}
	sort.Ints(years)
	return years
}

// EPs returns the energy proportionality of every result, in repository
// order. The values come from the precomputed metric columns; only the
// returned slice is freshly allocated.
func (rp *Repository) EPs() []float64 {
	return copyColumn(rp.metricColumns().eps)
}

// OverallEEs returns the SPECpower score of every result, in repository
// order.
func (rp *Repository) OverallEEs() []float64 {
	return copyColumn(rp.metricColumns().ees)
}

// PeakEEs returns every result's peak energy efficiency, in repository
// order.
func (rp *Repository) PeakEEs() []float64 {
	return copyColumn(rp.metricColumns().peakEEs)
}

// PeakEEUtilizations returns, for every result in repository order, the
// lowest utilization at which its peak efficiency occurs.
func (rp *Repository) PeakEEUtilizations() []float64 {
	return copyColumn(rp.metricColumns().peakEEUtils)
}

// IdleFractions returns every result's idle-to-peak power ratio, in
// repository order.
func (rp *Repository) IdleFractions() []float64 {
	return copyColumn(rp.metricColumns().idleFracs)
}

// DynamicRanges returns every result's normalized power swing, in
// repository order.
func (rp *Repository) DynamicRanges() []float64 {
	return copyColumn(rp.metricColumns().dynRanges)
}

// PeakOverFullRatios returns every result's peak-over-full-load
// efficiency ratio, in repository order.
func (rp *Repository) PeakOverFullRatios() []float64 {
	return copyColumn(rp.metricColumns().peakOverFull)
}

// SortByEP returns the results sorted by ascending EP (stable, copy).
// The sort compares precomputed keys, so it costs O(n log n) float
// comparisons rather than O(n log n) curve rebuilds.
func (rp *Repository) SortByEP() []*Result {
	return rp.sortByKey(rp.metricColumns().eps)
}

// SortByOverallEE returns the results sorted by ascending SPECpower
// score (stable, copy).
func (rp *Repository) SortByOverallEE() []*Result {
	return rp.sortByKey(rp.metricColumns().ees)
}

// sortByKey stable-sorts a copy of the results by the given column,
// which must be index-aligned with rp.results.
func (rp *Repository) sortByKey(keys []float64) []*Result {
	idx := make([]int, len(rp.results))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]*Result, len(idx))
	for i, j := range idx {
		out[i] = rp.results[j]
	}
	return out
}

// YearMismatched returns results whose published year differs from their
// hardware availability year — the 74 results (15.5%) the paper calls
// out.
func (rp *Repository) YearMismatched() *Repository {
	return rp.Filter(func(r *Result) bool { return r.PublishedYear != r.HWAvailYear })
}

// Merge combines repositories into one, de-duplicating by result ID
// (first occurrence wins). Use it to combine incremental corpus
// snapshots or mix measured and simulated results.
func Merge(repos ...*Repository) *Repository {
	seen := make(map[string]bool)
	var out []*Result
	for _, rp := range repos {
		if rp == nil {
			continue
		}
		for _, r := range rp.results {
			if r.ID != "" && seen[r.ID] {
				continue
			}
			seen[r.ID] = true
			out = append(out, r)
		}
	}
	return &Repository{results: out}
}

// IDs returns every result ID in repository order.
func (rp *Repository) IDs() []string {
	out := make([]string, len(rp.results))
	for i, r := range rp.results {
		out[i] = r.ID
	}
	return out
}

// FindByID returns the result with the given ID, or nil.
func (rp *Repository) FindByID(id string) *Result {
	for _, r := range rp.results {
		if r.ID == id {
			return r
		}
	}
	return nil
}
