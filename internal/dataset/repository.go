package dataset

import (
	"sort"

	"repro/internal/microarch"
)

// Repository is an in-memory collection of results with the filtering
// and grouping operations the analyses use. It stores pointers; callers
// must not mutate results after adding them.
type Repository struct {
	results []*Result
}

// NewRepository builds a repository over the given results.
func NewRepository(results []*Result) *Repository {
	return &Repository{results: append([]*Result(nil), results...)}
}

// Add appends results.
func (rp *Repository) Add(results ...*Result) {
	rp.results = append(rp.results, results...)
}

// Len returns the number of stored results.
func (rp *Repository) Len() int { return len(rp.results) }

// All returns the stored results (shared pointers, fresh slice).
func (rp *Repository) All() []*Result {
	return append([]*Result(nil), rp.results...)
}

// Valid returns a repository containing only compliant results — the
// paper's 517 → 477 step.
func (rp *Repository) Valid() *Repository {
	return rp.Filter(IsCompliant)
}

// NonCompliant returns the results that fail validation.
func (rp *Repository) NonCompliant() *Repository {
	return rp.Filter(func(r *Result) bool { return !IsCompliant(r) })
}

// Filter returns a repository of the results for which keep returns true.
func (rp *Repository) Filter(keep func(*Result) bool) *Repository {
	out := make([]*Result, 0, len(rp.results))
	for _, r := range rp.results {
		if keep(r) {
			out = append(out, r)
		}
	}
	return &Repository{results: out}
}

// SingleNode returns only single-node results.
func (rp *Repository) SingleNode() *Repository {
	return rp.Filter(func(r *Result) bool { return r.Nodes == 1 })
}

// MultiNode returns only results with more than one node.
func (rp *Repository) MultiNode() *Repository {
	return rp.Filter(func(r *Result) bool { return r.Nodes > 1 })
}

// YearRange returns results whose hardware availability year lies in
// [from, to] inclusive.
func (rp *Repository) YearRange(from, to int) *Repository {
	return rp.Filter(func(r *Result) bool {
		return r.HWAvailYear >= from && r.HWAvailYear <= to
	})
}

// ByHWYear groups results by hardware availability year.
func (rp *Repository) ByHWYear() map[int][]*Result {
	return rp.groupInt(func(r *Result) int { return r.HWAvailYear })
}

// ByPublishedYear groups results by the year SPEC published them.
func (rp *Repository) ByPublishedYear() map[int][]*Result {
	return rp.groupInt(func(r *Result) int { return r.PublishedYear })
}

// ByNodes groups results by total node count.
func (rp *Repository) ByNodes() map[int][]*Result {
	return rp.groupInt(func(r *Result) int { return r.Nodes })
}

// ByChips groups results by total chip count.
func (rp *Repository) ByChips() map[int][]*Result {
	return rp.groupInt(func(r *Result) int { return r.Chips })
}

func (rp *Repository) groupInt(key func(*Result) int) map[int][]*Result {
	out := make(map[int][]*Result)
	for _, r := range rp.results {
		k := key(r)
		out[k] = append(out[k], r)
	}
	return out
}

// ByFamily groups results by microarchitecture family (Fig. 6).
func (rp *Repository) ByFamily() map[microarch.Family][]*Result {
	out := make(map[microarch.Family][]*Result)
	for _, r := range rp.results {
		f := r.Codename.Family()
		out[f] = append(out[f], r)
	}
	return out
}

// ByCodename groups results by processor codename (Fig. 7).
func (rp *Repository) ByCodename() map[microarch.Codename][]*Result {
	out := make(map[microarch.Codename][]*Result)
	for _, r := range rp.results {
		out[r.Codename] = append(out[r.Codename], r)
	}
	return out
}

// HWYears returns the distinct hardware availability years in ascending
// order.
func (rp *Repository) HWYears() []int {
	seen := make(map[int]bool)
	for _, r := range rp.results {
		seen[r.HWAvailYear] = true
	}
	years := make([]int, 0, len(seen))
	for y := range seen {
		years = append(years, y)
	}
	sort.Ints(years)
	return years
}

// EPs returns the energy proportionality of every result, in repository
// order.
func (rp *Repository) EPs() []float64 {
	out := make([]float64, len(rp.results))
	for i, r := range rp.results {
		out[i] = r.EP()
	}
	return out
}

// OverallEEs returns the SPECpower score of every result, in repository
// order.
func (rp *Repository) OverallEEs() []float64 {
	out := make([]float64, len(rp.results))
	for i, r := range rp.results {
		out[i] = r.OverallEE()
	}
	return out
}

// SortByEP returns the results sorted by ascending EP (stable, copy).
func (rp *Repository) SortByEP() []*Result {
	out := rp.All()
	sort.SliceStable(out, func(i, j int) bool { return out[i].EP() < out[j].EP() })
	return out
}

// YearMismatched returns results whose published year differs from their
// hardware availability year — the 74 results (15.5%) the paper calls
// out.
func (rp *Repository) YearMismatched() *Repository {
	return rp.Filter(func(r *Result) bool { return r.PublishedYear != r.HWAvailYear })
}

// Merge combines repositories into one, de-duplicating by result ID
// (first occurrence wins). Use it to combine incremental corpus
// snapshots or mix measured and simulated results.
func Merge(repos ...*Repository) *Repository {
	seen := make(map[string]bool)
	var out []*Result
	for _, rp := range repos {
		if rp == nil {
			continue
		}
		for _, r := range rp.results {
			if r.ID != "" && seen[r.ID] {
				continue
			}
			seen[r.ID] = true
			out = append(out, r)
		}
	}
	return &Repository{results: out}
}

// IDs returns every result ID in repository order.
func (rp *Repository) IDs() []string {
	out := make([]string, len(rp.results))
	for i, r := range rp.results {
		out[i] = r.ID
	}
	return out
}

// FindByID returns the result with the given ID, or nil.
func (rp *Repository) FindByID(id string) *Result {
	for _, r := range rp.results {
		if r.ID == id {
			return r
		}
	}
	return nil
}
