package dataset

import (
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/microarch"
)

// Repository is an in-memory collection of results with the filtering
// and grouping operations the analyses use. It stores pointers; callers
// must not mutate results after adding them.
//
// The primary representation is the columnar ColumnStore: metric
// accessors (EPs, OverallEEs, SortByEP, …) and the internal analyses
// read struct-of-arrays columns, while All and the grouping helpers
// materialize []*Result adapter views lazily. A repository born from
// results builds its columns on first columnar access (sharing each
// result's memoized metric bundle); a repository born from a
// ColumnStore materializes result views on first row access.
//
// Concurrency contract: the repository state (results + columns) is an
// immutable snapshot behind an atomic pointer. Readers never block and
// never observe a half-updated state. Add publishes a brand-new
// snapshot; readers that loaded the old snapshot keep reading the old
// results and old columns, which stay internally consistent forever.
// Concurrent Add calls serialize against each other.
type Repository struct {
	mu    sync.Mutex // serializes Add and other writers
	state atomic.Pointer[repoState]
}

// repoState is one immutable snapshot. Exactly one of results/store may
// be nil: nil results means "not materialized yet" (column-born), nil
// store means "columns not built yet" (result-born). Lazy fills publish
// a new snapshot via CompareAndSwap, so a snapshot's fields never
// change after publication.
type repoState struct {
	results []*Result
	store   *ColumnStore
}

func newRepoState(results []*Result, store *ColumnStore) *Repository {
	rp := &Repository{}
	rp.state.Store(&repoState{results: results, store: store})
	return rp
}

// NewRepository builds a repository over the given results.
func NewRepository(results []*Result) *Repository {
	rs := make([]*Result, len(results))
	copy(rs, results)
	return newRepoState(rs, nil)
}

// NewColumnRepository builds a repository directly over a column store;
// []*Result views materialize lazily on first row access.
func NewColumnRepository(cs *ColumnStore) *Repository {
	return newRepoState(nil, cs)
}

// Add appends results, publishing a new state snapshot. Concurrent
// readers holding the previous snapshot (including its metric columns)
// keep a consistent view of the repository as it was before Add; the
// columns rebuild lazily for the new snapshot.
func (rp *Repository) Add(results ...*Result) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	base := rp.resultsSlice()
	merged := make([]*Result, 0, len(base)+len(results))
	merged = append(merged, base...)
	merged = append(merged, results...)
	rp.state.Store(&repoState{results: merged})
}

// resultsSlice returns the materialized []*Result view, building and
// publishing it on first use for column-born repositories. The returned
// slice is shared: callers must not mutate it.
func (rp *Repository) resultsSlice() []*Result {
	st := rp.state.Load()
	if st.results != nil {
		return st.results
	}
	mat := st.store.Materialize()
	if mat == nil {
		mat = []*Result{}
	}
	rp.state.CompareAndSwap(st, &repoState{results: mat, store: st.store})
	// If another goroutine won the race, adopt its view so row pointer
	// identity stays stable across calls.
	if cur := rp.state.Load(); cur.results != nil && cur.store == st.store {
		return cur.results
	}
	return mat
}

// columns returns the raw column store, building and publishing it on
// first use for result-born repositories.
func (rp *Repository) columns() *ColumnStore {
	st := rp.state.Load()
	if st.store != nil {
		return st.store
	}
	cs := buildRawColumns(st.results)
	rp.state.CompareAndSwap(st, &repoState{results: st.results, store: cs})
	if cur := rp.state.Load(); cur.store != nil && sameResults(cur.results, st.results) {
		return cur.store
	}
	return cs
}

func sameResults(a, b []*Result) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// metricStore returns the column store with its derived metric layer
// built. For result-born repositories the build reads each result's
// memoized bundle, so warm caches are shared rather than recomputed.
func (rp *Repository) metricStore() *ColumnStore {
	st := rp.state.Load()
	cs := st.store
	if cs == nil {
		cs = rp.columns()
	}
	if !cs.MetricsBuilt() {
		cs.buildDerived(st.results)
	}
	return cs
}

// Columns returns the repository's column store with the derived metric
// layer built. The store and every column it exposes are read-only; the
// analyses iterate these columns directly instead of walking []*Result.
func (rp *Repository) Columns() *ColumnStore {
	return rp.metricStore()
}

// Precompute eagerly builds the metric columns (and thereby every
// result's memoized metric bundle) in parallel. It is never required —
// the columns build themselves on first use — but lets callers pay the
// cold cost up front, e.g. before serving queries.
func (rp *Repository) Precompute() {
	rp.metricStore()
}

func copyColumn(col []float64) []float64 {
	return append([]float64(nil), col...)
}

// Len returns the number of stored results.
func (rp *Repository) Len() int {
	st := rp.state.Load()
	if st.results != nil {
		return len(st.results)
	}
	return st.store.Len()
}

// At returns the result at index i (repository order). Column-born
// repositories materialize the row views on first access.
func (rp *Repository) At(i int) *Result {
	return rp.resultsSlice()[i]
}

// All returns the stored results (shared pointers, fresh slice).
func (rp *Repository) All() []*Result {
	return append([]*Result(nil), rp.resultsSlice()...)
}

// Valid returns a repository containing only compliant results — the
// paper's 517 → 477 step. Validation builds each result's curve, so the
// check fans out across CPUs; repository order is preserved.
func (rp *Repository) Valid() *Repository {
	return rp.filterCompliance(func(ok bool) bool { return ok })
}

// NonCompliant returns the results that fail validation.
func (rp *Repository) NonCompliant() *Repository {
	return rp.filterCompliance(func(ok bool) bool { return !ok })
}

// filterCompliance keeps the results whose compliance verdict satisfies
// keep, reading the compliance column (computed in parallel on the cold
// build) and preserving repository order.
func (rp *Repository) filterCompliance(keep func(compliant bool) bool) *Repository {
	st := rp.state.Load()
	cs := rp.metricStore()
	comp := cs.ComplianceCol()
	if cs.AllCompliant() {
		if keep(true) {
			return newRepoState(st.results, cs)
		}
		return NewRepository(nil)
	}
	if st.results != nil {
		out := make([]*Result, 0, len(st.results))
		for i, r := range st.results {
			if keep(comp[i]) {
				out = append(out, r)
			}
		}
		return newRepoState(out, nil)
	}
	return NewColumnRepository(cs.Gather(keepRows(cs.Len(), func(i int) bool { return keep(comp[i]) })))
}

func keepRows(n int, keep func(int) bool) []int32 {
	out := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if keep(i) {
			out = append(out, int32(i))
		}
	}
	return out
}

// Filter returns a repository of the results for which keep returns true.
func (rp *Repository) Filter(keep func(*Result) bool) *Repository {
	all := rp.resultsSlice()
	out := make([]*Result, 0, len(all))
	for _, r := range all {
		if keep(r) {
			out = append(out, r)
		}
	}
	return newRepoState(out, nil)
}

// filterColumns keeps the rows satisfying pred, staying columnar for
// column-born repositories and walking the result views otherwise.
func (rp *Repository) filterColumns(pred func(cs *ColumnStore, i int) bool, resPred func(*Result) bool) *Repository {
	st := rp.state.Load()
	if st.results != nil {
		out := make([]*Result, 0, len(st.results))
		for _, r := range st.results {
			if resPred(r) {
				out = append(out, r)
			}
		}
		return newRepoState(out, nil)
	}
	cs := st.store
	return NewColumnRepository(cs.Gather(keepRows(cs.Len(), func(i int) bool { return pred(cs, i) })))
}

// SingleNode returns only single-node results.
func (rp *Repository) SingleNode() *Repository {
	return rp.filterColumns(
		func(cs *ColumnStore, i int) bool { return cs.nodes[i] == 1 },
		func(r *Result) bool { return r.Nodes == 1 })
}

// MultiNode returns only results with more than one node.
func (rp *Repository) MultiNode() *Repository {
	return rp.filterColumns(
		func(cs *ColumnStore, i int) bool { return cs.nodes[i] > 1 },
		func(r *Result) bool { return r.Nodes > 1 })
}

// YearRange returns results whose hardware availability year lies in
// [from, to] inclusive.
func (rp *Repository) YearRange(from, to int) *Repository {
	return rp.filterColumns(
		func(cs *ColumnStore, i int) bool {
			y := int(cs.hwYears[i])
			return y >= from && y <= to
		},
		func(r *Result) bool { return r.HWAvailYear >= from && r.HWAvailYear <= to })
}

// YearMismatched returns results whose published year differs from their
// hardware availability year — the 74 results (15.5%) the paper calls
// out.
func (rp *Repository) YearMismatched() *Repository {
	return rp.filterColumns(
		func(cs *ColumnStore, i int) bool { return cs.pubYears[i] != cs.hwYears[i] },
		func(r *Result) bool { return r.PublishedYear != r.HWAvailYear })
}

// ByHWYear groups results by hardware availability year.
func (rp *Repository) ByHWYear() map[int][]*Result {
	return rp.groupInt(func(r *Result) int { return r.HWAvailYear })
}

// ByPublishedYear groups results by the year SPEC published them.
func (rp *Repository) ByPublishedYear() map[int][]*Result {
	return rp.groupInt(func(r *Result) int { return r.PublishedYear })
}

// ByNodes groups results by total node count.
func (rp *Repository) ByNodes() map[int][]*Result {
	return rp.groupInt(func(r *Result) int { return r.Nodes })
}

// ByChips groups results by total chip count.
func (rp *Repository) ByChips() map[int][]*Result {
	return rp.groupInt(func(r *Result) int { return r.Chips })
}

func (rp *Repository) groupInt(key func(*Result) int) map[int][]*Result {
	out := make(map[int][]*Result)
	for _, r := range rp.resultsSlice() {
		k := key(r)
		out[k] = append(out[k], r)
	}
	return out
}

// ByFamily groups results by microarchitecture family (Fig. 6).
func (rp *Repository) ByFamily() map[microarch.Family][]*Result {
	out := make(map[microarch.Family][]*Result)
	for _, r := range rp.resultsSlice() {
		f := r.Codename.Family()
		out[f] = append(out[f], r)
	}
	return out
}

// ByCodename groups results by processor codename (Fig. 7).
func (rp *Repository) ByCodename() map[microarch.Codename][]*Result {
	out := make(map[microarch.Codename][]*Result)
	for _, r := range rp.resultsSlice() {
		out[r.Codename] = append(out[r.Codename], r)
	}
	return out
}

// HWYears returns the distinct hardware availability years in ascending
// order.
func (rp *Repository) HWYears() []int {
	years := distinctInt32(rp.columns().hwYears)
	sort.Ints(years)
	return years
}

func distinctInt32(col []int32) []int {
	seen := make(map[int]bool)
	for _, v := range col {
		seen[int(v)] = true
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	return out
}

// EPs returns the energy proportionality of every result, in repository
// order. The values come from the metric columns; only the returned
// slice is freshly allocated.
func (rp *Repository) EPs() []float64 {
	return copyColumn(rp.metricStore().EPCol())
}

// OverallEEs returns the SPECpower score of every result, in repository
// order.
func (rp *Repository) OverallEEs() []float64 {
	return copyColumn(rp.metricStore().OverallEECol())
}

// PeakEEs returns every result's peak energy efficiency, in repository
// order.
func (rp *Repository) PeakEEs() []float64 {
	return copyColumn(rp.metricStore().PeakEECol())
}

// PeakEEUtilizations returns, for every result in repository order, the
// lowest utilization at which its peak efficiency occurs.
func (rp *Repository) PeakEEUtilizations() []float64 {
	return copyColumn(rp.metricStore().PeakEEUtilCol())
}

// IdleFractions returns every result's idle-to-peak power ratio, in
// repository order.
func (rp *Repository) IdleFractions() []float64 {
	return copyColumn(rp.metricStore().IdleFractionCol())
}

// DynamicRanges returns every result's normalized power swing, in
// repository order.
func (rp *Repository) DynamicRanges() []float64 {
	return copyColumn(rp.metricStore().DynamicRangeCol())
}

// PeakOverFullRatios returns every result's peak-over-full-load
// efficiency ratio, in repository order.
func (rp *Repository) PeakOverFullRatios() []float64 {
	return copyColumn(rp.metricStore().PeakOverFullCol())
}

// SortByEP returns the results sorted by ascending EP (stable, copy).
// The sort compares precomputed column keys, so it costs O(n log n)
// float comparisons rather than O(n log n) curve rebuilds.
func (rp *Repository) SortByEP() []*Result {
	return rp.sortByKey(rp.metricStore().EPCol())
}

// SortByOverallEE returns the results sorted by ascending SPECpower
// score (stable, copy).
func (rp *Repository) SortByOverallEE() []*Result {
	return rp.sortByKey(rp.metricStore().OverallEECol())
}

// sortByKey stable-sorts a copy of the results by the given column,
// which must be index-aligned with the repository order.
func (rp *Repository) sortByKey(keys []float64) []*Result {
	idx := ArgsortStable(keys)
	all := rp.resultsSlice()
	out := make([]*Result, len(idx))
	for i, j := range idx {
		out[i] = all[j]
	}
	return out
}

// ArgsortStable returns the index permutation that stable-sorts keys
// ascending: out[k] is the row index of the k-th smallest key, equal
// keys staying in row order. NaNs compare equal to everything, matching
// a stable sort under the < comparator.
func ArgsortStable(keys []float64) []int32 {
	for _, k := range keys {
		if k != k { // NaN: the < comparator is no longer a total preorder
			return argsortStableSlow(keys)
		}
	}
	// NaN-free keys: an unstable sort of (key, index) pairs under the
	// lexicographic order produces exactly the stable permutation —
	// ties break on the original index — and runs well ahead of a
	// stable merge over an index slice, because the comparator touches
	// adjacent pair memory instead of random key positions.
	pairs := make([]argsortPair, len(keys))
	for i := range pairs {
		pairs[i] = argsortPair{k: keys[i], i: int32(i)}
	}
	slices.SortFunc(pairs, func(a, b argsortPair) int {
		if a.k < b.k {
			return -1
		}
		if a.k > b.k {
			return 1
		}
		return int(a.i) - int(b.i)
	})
	idx := make([]int32, len(pairs))
	for i := range pairs {
		idx[i] = pairs[i].i
	}
	return idx
}

type argsortPair struct {
	k float64
	i int32
}

// argsortStableSlow is the reference stable argsort, kept for samples
// containing NaN (where the comparator below is not a strict weak
// order and only a stable sort pins the output).
func argsortStableSlow(keys []float64) []int32 {
	idx := make([]int32, len(keys))
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortStableFunc(idx, func(a, b int32) int {
		ka, kb := keys[a], keys[b]
		if ka < kb {
			return -1
		}
		if ka > kb {
			return 1
		}
		return 0
	})
	return idx
}

// Merge combines repositories into one, de-duplicating by result ID
// (first occurrence wins). Use it to combine incremental corpus
// snapshots or mix measured and simulated results.
func Merge(repos ...*Repository) *Repository {
	seen := make(map[string]bool)
	var out []*Result
	for _, rp := range repos {
		if rp == nil {
			continue
		}
		for _, r := range rp.resultsSlice() {
			if r.ID != "" && seen[r.ID] {
				continue
			}
			seen[r.ID] = true
			out = append(out, r)
		}
	}
	return newRepoState(out, nil)
}

// IDs returns every result ID in repository order.
func (rp *Repository) IDs() []string {
	return append([]string(nil), rp.columns().ids...)
}

// FindByID returns the result with the given ID, or nil.
func (rp *Repository) FindByID(id string) *Result {
	st := rp.state.Load()
	if st.results != nil {
		for _, r := range st.results {
			if r.ID == id {
				return r
			}
		}
		return nil
	}
	for i, v := range st.store.ids {
		if v == id {
			return rp.At(i)
		}
	}
	return nil
}
