package dataset

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/microarch"
	"repro/internal/par"
)

// ColumnStore is the struct-of-arrays primary representation of a
// corpus: every disclosure field lives in its own index-aligned column,
// and the variable-length measurement levels are flattened into shared
// arrays addressed by a prefix-sum offset column. Analyses iterate the
// columns directly — no pointer chasing, no per-result slices — which
// is what keeps million-server corpora in the low-single-digit-second
// range on the repository's hot paths.
//
// A ColumnStore is immutable after construction. The raw columns are
// fixed at build time; the derived metric layer (EP, overall EE, peak
// EE and its spots, idle fraction, dynamic range, per-level EE,
// compliance flags) is computed once on first use and published
// atomically, so concurrent readers are safe. All *Col accessors return
// the backing arrays without copying: callers must treat them as
// read-only.
type ColumnStore struct {
	n int

	// String columns.
	ids, vendors, systems, cpuModels, jvms, oss []string

	// Integer columns.
	formFactors  []FormFactor
	pubYears     []int32
	pubQuarters  []int32
	hwYears      []int32
	hwQuarters   []int32
	nodes        []int32
	chips        []int32
	coresPerChip []int32
	codenames    []microarch.Codename

	// Float columns.
	nominalGHz []float64
	memoryGB   []float64
	idleWatts  []float64

	// Flattened level columns: row i's levels occupy
	// [levelOff[i], levelOff[i+1]) in each of the four arrays.
	levelOff    []int32 // length n+1
	levelTarget []float64
	levelActual []float64
	levelOps    []float64
	levelPower  []float64

	mu      sync.Mutex // serializes the derived build
	derived atomic.Pointer[derivedColumns]

	// memo caches corpus-level analysis artifacts (yearly trends,
	// sorted permutations, …) keyed by name; see Memoize.
	memo sync.Map
}

// derivedColumns is the metric layer computed from the raw columns: the
// exact scalars Result's memoized bundle holds, plus flattened per-level
// efficiency and peak-spot arrays, plus validity flags.
type derivedColumns struct {
	eps          []float64
	ees          []float64
	peakEEs      []float64
	peakEEUtils  []float64 // lowest peak-efficiency utilization per row
	idleFracs    []float64
	dynRanges    []float64
	peakOverFull []float64
	linearDevs   []float64

	// levelEE is ops/watt per flattened level, aligned with levelOff.
	levelEE []float64

	// Peak-efficiency spots (ties included, ascending): row i's spots
	// occupy [spotOff[i], spotOff[i+1]).
	spotOff []int32
	spots   []float64

	curveOK   []bool
	compliant []bool

	allCurvesOK  bool
	allCompliant bool
}

// Len returns the number of rows.
func (cs *ColumnStore) Len() int { return cs.n }

// Levels returns the total flattened level count.
func (cs *ColumnStore) Levels() int { return int(cs.levelOff[cs.n]) }

// Raw column accessors (no copy; treat as read-only).

func (cs *ColumnStore) IDCol() []string                   { return cs.ids }
func (cs *ColumnStore) VendorCol() []string               { return cs.vendors }
func (cs *ColumnStore) SystemCol() []string               { return cs.systems }
func (cs *ColumnStore) CPUModelCol() []string             { return cs.cpuModels }
func (cs *ColumnStore) JVMCol() []string                  { return cs.jvms }
func (cs *ColumnStore) OSCol() []string                   { return cs.oss }
func (cs *ColumnStore) FormFactorCol() []FormFactor       { return cs.formFactors }
func (cs *ColumnStore) PubYearCol() []int32               { return cs.pubYears }
func (cs *ColumnStore) PubQuarterCol() []int32            { return cs.pubQuarters }
func (cs *ColumnStore) HWYearCol() []int32                { return cs.hwYears }
func (cs *ColumnStore) HWQuarterCol() []int32             { return cs.hwQuarters }
func (cs *ColumnStore) NodesCol() []int32                 { return cs.nodes }
func (cs *ColumnStore) ChipsCol() []int32                 { return cs.chips }
func (cs *ColumnStore) CoresPerChipCol() []int32          { return cs.coresPerChip }
func (cs *ColumnStore) CodenameCol() []microarch.Codename { return cs.codenames }
func (cs *ColumnStore) NominalGHzCol() []float64          { return cs.nominalGHz }
func (cs *ColumnStore) MemoryGBCol() []float64            { return cs.memoryGB }
func (cs *ColumnStore) IdleWattsCol() []float64           { return cs.idleWatts }
func (cs *ColumnStore) LevelOffsets() []int32             { return cs.levelOff }
func (cs *ColumnStore) LevelTargetCol() []float64         { return cs.levelTarget }
func (cs *ColumnStore) LevelActualCol() []float64         { return cs.levelActual }
func (cs *ColumnStore) LevelOpsCol() []float64            { return cs.levelOps }
func (cs *ColumnStore) LevelPowerCol() []float64          { return cs.levelPower }

// Derived column accessors. Each builds the metric layer on first use.

func (cs *ColumnStore) EPCol() []float64           { return cs.derivedCols().eps }
func (cs *ColumnStore) OverallEECol() []float64    { return cs.derivedCols().ees }
func (cs *ColumnStore) PeakEECol() []float64       { return cs.derivedCols().peakEEs }
func (cs *ColumnStore) PeakEEUtilCol() []float64   { return cs.derivedCols().peakEEUtils }
func (cs *ColumnStore) IdleFractionCol() []float64 { return cs.derivedCols().idleFracs }
func (cs *ColumnStore) DynamicRangeCol() []float64 { return cs.derivedCols().dynRanges }
func (cs *ColumnStore) PeakOverFullCol() []float64 { return cs.derivedCols().peakOverFull }
func (cs *ColumnStore) LinearDevCol() []float64    { return cs.derivedCols().linearDevs }
func (cs *ColumnStore) LevelEECol() []float64      { return cs.derivedCols().levelEE }
func (cs *ColumnStore) PeakSpotOffsets() []int32   { return cs.derivedCols().spotOff }
func (cs *ColumnStore) PeakSpotCol() []float64     { return cs.derivedCols().spots }
func (cs *ColumnStore) CurveOKCol() []bool         { return cs.derivedCols().curveOK }
func (cs *ColumnStore) ComplianceCol() []bool      { return cs.derivedCols().compliant }

// AllCurvesOK reports whether every row builds a valid curve.
func (cs *ColumnStore) AllCurvesOK() bool { return cs.derivedCols().allCurvesOK }

// AllCompliant reports whether every row passes Validate.
func (cs *ColumnStore) AllCompliant() bool { return cs.derivedCols().allCompliant }

// MetricsBuilt reports whether the derived layer has been computed,
// without triggering the build.
func (cs *ColumnStore) MetricsBuilt() bool { return cs.derived.Load() != nil }

// Memoize returns the store-lifetime cached value under key, building
// and publishing it on first use. The store is immutable, so any
// deterministic function of its columns may be cached this way; report
// sections that share an expensive aggregate (e.g. the per-year trend
// statistics) compute it once per corpus instead of once per section.
// Concurrent first calls may both run build (it must be deterministic
// and side-effect free); one value wins the publish and is returned to
// every caller, so all callers share one artifact — treat it as
// read-only.
func (cs *ColumnStore) Memoize(key string, build func() any) any {
	if v, ok := cs.memo.Load(key); ok {
		return v
	}
	v, _ := cs.memo.LoadOrStore(key, build())
	return v
}

// Result materializes row i as a standalone *Result with a fresh metric
// cache. The returned result is an adapter view: it carries copies of
// the row's fields, so mutating it never affects the store.
func (cs *ColumnStore) Result(i int) *Result {
	lo, hi := cs.levelOff[i], cs.levelOff[i+1]
	levels := make([]LoadLevel, hi-lo)
	for j := range levels {
		k := lo + int32(j)
		levels[j] = LoadLevel{
			TargetLoad:    cs.levelTarget[k],
			ActualLoad:    cs.levelActual[k],
			OpsPerSec:     cs.levelOps[k],
			AvgPowerWatts: cs.levelPower[k],
		}
	}
	return &Result{
		ID:               cs.ids[i],
		Vendor:           cs.vendors[i],
		System:           cs.systems[i],
		FormFactor:       cs.formFactors[i],
		PublishedYear:    int(cs.pubYears[i]),
		PublishedQuarter: int(cs.pubQuarters[i]),
		HWAvailYear:      int(cs.hwYears[i]),
		HWAvailQuarter:   int(cs.hwQuarters[i]),
		Nodes:            int(cs.nodes[i]),
		Chips:            int(cs.chips[i]),
		CoresPerChip:     int(cs.coresPerChip[i]),
		CPUModel:         cs.cpuModels[i],
		Codename:         cs.codenames[i],
		NominalGHz:       cs.nominalGHz[i],
		MemoryGB:         cs.memoryGB[i],
		JVM:              cs.jvms[i],
		OS:               cs.oss[i],
		ActiveIdleWatts:  cs.idleWatts[i],
		Levels:           levels,
	}
}

// Materialize builds the full []*Result adapter view in parallel.
func (cs *ColumnStore) Materialize() []*Result {
	return par.Map(cs.n, cs.Result)
}

// derivedCols returns the metric layer, building it on first use from
// transient row views.
func (cs *ColumnStore) derivedCols() *derivedColumns {
	if d := cs.derived.Load(); d != nil {
		return d
	}
	return cs.buildDerived(nil)
}

// buildDerived computes the derived metric layer. Column-born stores
// run the allocation-free columnar kernel (derive.go) straight over the
// raw columns. When rows is non-nil it must be the index-aligned
// []*Result the store was built from; the build then reads each
// result's memoized bundle (sharing warm caches) — bit-identical to the
// kernel by the differential tests in derive_test.go. Concurrent
// callers are serialized; the winner publishes atomically.
func (cs *ColumnStore) buildDerived(rows []*Result) *derivedColumns {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if d := cs.derived.Load(); d != nil {
		return d
	}
	n := cs.n
	d := &derivedColumns{
		eps:          make([]float64, n),
		ees:          make([]float64, n),
		peakEEs:      make([]float64, n),
		peakEEUtils:  make([]float64, n),
		idleFracs:    make([]float64, n),
		dynRanges:    make([]float64, n),
		peakOverFull: make([]float64, n),
		linearDevs:   make([]float64, n),
		levelEE:      make([]float64, cs.Levels()),
		spotOff:      make([]int32, n+1),
		spots:        nil,
		curveOK:      make([]bool, n),
		compliant:    make([]bool, n),
	}
	if rows == nil {
		// No materialized rows to share caches with: run the columnar
		// kernel (derive.go) straight over the raw columns.
		cs.fillDerivedColumnar(d)
		cs.derived.Store(d)
		return d
	}
	// Per-row spot lists reference the memoized bundles until the
	// sequential flattening pass below.
	tmpSpots := make([][]float64, n)
	par.ForEach(n, func(i int) {
		r := rows[i]
		m := r.cached()
		d.curveOK[i] = m.err == nil
		d.eps[i] = m.ep
		d.ees[i] = m.overallEE
		d.peakEEs[i] = m.peakEE
		if len(m.peakEEUtils) > 0 {
			d.peakEEUtils[i] = m.peakEEUtils[0]
		}
		d.idleFracs[i] = m.idleFraction
		d.dynRanges[i] = m.dynamicRange
		d.peakOverFull[i] = m.peakOverFull
		d.linearDevs[i] = m.linearDev
		tmpSpots[i] = m.peakEEUtils
		d.compliant[i] = IsCompliant(r)
		for j := cs.levelOff[i]; j < cs.levelOff[i+1]; j++ {
			if w := cs.levelPower[j]; w > 0 {
				d.levelEE[j] = cs.levelOps[j] / w
			}
		}
	})
	total := 0
	d.allCurvesOK, d.allCompliant = true, true
	for i := 0; i < n; i++ {
		total += len(tmpSpots[i])
		d.spotOff[i+1] = int32(total)
		d.allCurvesOK = d.allCurvesOK && d.curveOK[i]
		d.allCompliant = d.allCompliant && d.compliant[i]
	}
	d.spots = make([]float64, 0, total)
	for _, s := range tmpSpots {
		d.spots = append(d.spots, s...)
	}
	cs.derived.Store(d)
	return d
}

// CurveErr returns the curve-construction error of row i (nil for valid
// rows), materializing a transient view only on the failure path.
func (cs *ColumnStore) CurveErr(i int) error {
	if cs.derivedCols().curveOK[i] {
		return nil
	}
	_, err := cs.Result(i).Curve()
	return err
}

// ColumnBuilder accumulates results into a ColumnStore row by row.
// When derived is requested, each appended result's memoized metric
// bundle is captured alongside the raw fields, so stores built during
// generation carry their metric layer with no second pass.
type ColumnBuilder struct {
	cs          *ColumnStore
	d           *derivedColumns
	withDerived bool
}

// NewColumnBuilder returns a builder with capacity hints for rows and
// flattened levels (either may be zero).
func NewColumnBuilder(rowCap, levelCap int, withDerived bool) *ColumnBuilder {
	b := &ColumnBuilder{
		cs: &ColumnStore{
			ids:          make([]string, 0, rowCap),
			vendors:      make([]string, 0, rowCap),
			systems:      make([]string, 0, rowCap),
			cpuModels:    make([]string, 0, rowCap),
			jvms:         make([]string, 0, rowCap),
			oss:          make([]string, 0, rowCap),
			formFactors:  make([]FormFactor, 0, rowCap),
			pubYears:     make([]int32, 0, rowCap),
			pubQuarters:  make([]int32, 0, rowCap),
			hwYears:      make([]int32, 0, rowCap),
			hwQuarters:   make([]int32, 0, rowCap),
			nodes:        make([]int32, 0, rowCap),
			chips:        make([]int32, 0, rowCap),
			coresPerChip: make([]int32, 0, rowCap),
			codenames:    make([]microarch.Codename, 0, rowCap),
			nominalGHz:   make([]float64, 0, rowCap),
			memoryGB:     make([]float64, 0, rowCap),
			idleWatts:    make([]float64, 0, rowCap),
			levelOff:     append(make([]int32, 0, rowCap+1), 0),
			levelTarget:  make([]float64, 0, levelCap),
			levelActual:  make([]float64, 0, levelCap),
			levelOps:     make([]float64, 0, levelCap),
			levelPower:   make([]float64, 0, levelCap),
		},
		withDerived: withDerived,
	}
	if withDerived {
		b.d = &derivedColumns{
			spotOff:      append(make([]int32, 0, rowCap+1), 0),
			allCurvesOK:  true,
			allCompliant: true,
		}
	}
	return b
}

// Append adds one result's fields as a new row.
func (b *ColumnBuilder) Append(r *Result) {
	cs := b.cs
	cs.ids = append(cs.ids, r.ID)
	cs.vendors = append(cs.vendors, r.Vendor)
	cs.systems = append(cs.systems, r.System)
	cs.cpuModels = append(cs.cpuModels, r.CPUModel)
	cs.jvms = append(cs.jvms, r.JVM)
	cs.oss = append(cs.oss, r.OS)
	cs.formFactors = append(cs.formFactors, r.FormFactor)
	cs.pubYears = append(cs.pubYears, int32(r.PublishedYear))
	cs.pubQuarters = append(cs.pubQuarters, int32(r.PublishedQuarter))
	cs.hwYears = append(cs.hwYears, int32(r.HWAvailYear))
	cs.hwQuarters = append(cs.hwQuarters, int32(r.HWAvailQuarter))
	cs.nodes = append(cs.nodes, int32(r.Nodes))
	cs.chips = append(cs.chips, int32(r.Chips))
	cs.coresPerChip = append(cs.coresPerChip, int32(r.CoresPerChip))
	cs.codenames = append(cs.codenames, r.Codename)
	cs.nominalGHz = append(cs.nominalGHz, r.NominalGHz)
	cs.memoryGB = append(cs.memoryGB, r.MemoryGB)
	cs.idleWatts = append(cs.idleWatts, r.ActiveIdleWatts)
	for _, lv := range r.Levels {
		cs.levelTarget = append(cs.levelTarget, lv.TargetLoad)
		cs.levelActual = append(cs.levelActual, lv.ActualLoad)
		cs.levelOps = append(cs.levelOps, lv.OpsPerSec)
		cs.levelPower = append(cs.levelPower, lv.AvgPowerWatts)
	}
	cs.levelOff = append(cs.levelOff, int32(len(cs.levelTarget)))
	cs.n++
	if b.withDerived {
		b.appendDerived(r)
	}
}

func (b *ColumnBuilder) appendDerived(r *Result) {
	d := b.d
	m := r.cached()
	ok := m.err == nil
	d.curveOK = append(d.curveOK, ok)
	d.allCurvesOK = d.allCurvesOK && ok
	d.eps = append(d.eps, m.ep)
	d.ees = append(d.ees, m.overallEE)
	d.peakEEs = append(d.peakEEs, m.peakEE)
	first := 0.0
	if len(m.peakEEUtils) > 0 {
		first = m.peakEEUtils[0]
	}
	d.peakEEUtils = append(d.peakEEUtils, first)
	d.idleFracs = append(d.idleFracs, m.idleFraction)
	d.dynRanges = append(d.dynRanges, m.dynamicRange)
	d.peakOverFull = append(d.peakOverFull, m.peakOverFull)
	d.linearDevs = append(d.linearDevs, m.linearDev)
	for _, lv := range r.Levels {
		ee := 0.0
		if lv.AvgPowerWatts > 0 {
			ee = lv.OpsPerSec / lv.AvgPowerWatts
		}
		d.levelEE = append(d.levelEE, ee)
	}
	d.spots = append(d.spots, m.peakEEUtils...)
	d.spotOff = append(d.spotOff, int32(len(d.spots)))
	compliant := IsCompliant(r)
	d.compliant = append(d.compliant, compliant)
	d.allCompliant = d.allCompliant && compliant
}

// Store finalizes the builder. The builder must not be used afterwards.
func (b *ColumnBuilder) Store() *ColumnStore {
	if b.withDerived {
		b.cs.derived.Store(b.d)
	}
	return b.cs
}

// BuildColumns converts results into a ColumnStore, computing the
// derived metric layer in parallel from each result's memoized bundle
// (results with warm caches contribute them for free).
func BuildColumns(results []*Result) *ColumnStore {
	cs := buildRawColumns(results)
	cs.buildDerived(results)
	return cs
}

// buildRawColumns copies the raw disclosure fields into columns without
// touching metrics.
func buildRawColumns(results []*Result) *ColumnStore {
	n := len(results)
	levels := 0
	for _, r := range results {
		levels += len(r.Levels)
	}
	b := NewColumnBuilder(n, levels, false)
	for _, r := range results {
		b.Append(r)
	}
	return b.Store()
}

// Gather builds a new store holding the given rows, in order. The
// derived layer is gathered too when it has already been built, so
// filtering a warm store never recomputes a metric.
func (cs *ColumnStore) Gather(rows []int32) *ColumnStore {
	n := len(rows)
	out := &ColumnStore{
		n:            n,
		ids:          make([]string, n),
		vendors:      make([]string, n),
		systems:      make([]string, n),
		cpuModels:    make([]string, n),
		jvms:         make([]string, n),
		oss:          make([]string, n),
		formFactors:  make([]FormFactor, n),
		pubYears:     make([]int32, n),
		pubQuarters:  make([]int32, n),
		hwYears:      make([]int32, n),
		hwQuarters:   make([]int32, n),
		nodes:        make([]int32, n),
		chips:        make([]int32, n),
		coresPerChip: make([]int32, n),
		codenames:    make([]microarch.Codename, n),
		nominalGHz:   make([]float64, n),
		memoryGB:     make([]float64, n),
		idleWatts:    make([]float64, n),
		levelOff:     make([]int32, n+1),
	}
	levels := 0
	for i, r := range rows {
		levels += int(cs.levelOff[r+1] - cs.levelOff[r])
		out.levelOff[i+1] = int32(levels)
	}
	out.levelTarget = make([]float64, levels)
	out.levelActual = make([]float64, levels)
	out.levelOps = make([]float64, levels)
	out.levelPower = make([]float64, levels)
	d := cs.derived.Load()
	var od *derivedColumns
	if d != nil {
		od = &derivedColumns{
			eps:          make([]float64, n),
			ees:          make([]float64, n),
			peakEEs:      make([]float64, n),
			peakEEUtils:  make([]float64, n),
			idleFracs:    make([]float64, n),
			dynRanges:    make([]float64, n),
			peakOverFull: make([]float64, n),
			linearDevs:   make([]float64, n),
			levelEE:      make([]float64, levels),
			spotOff:      make([]int32, n+1),
			curveOK:      make([]bool, n),
			compliant:    make([]bool, n),
			allCurvesOK:  true,
			allCompliant: true,
		}
		spots := 0
		for i, r := range rows {
			spots += int(d.spotOff[r+1] - d.spotOff[r])
			od.spotOff[i+1] = int32(spots)
		}
		od.spots = make([]float64, spots)
	}
	par.ForEach(n, func(i int) {
		r := rows[i]
		out.ids[i] = cs.ids[r]
		out.vendors[i] = cs.vendors[r]
		out.systems[i] = cs.systems[r]
		out.cpuModels[i] = cs.cpuModels[r]
		out.jvms[i] = cs.jvms[r]
		out.oss[i] = cs.oss[r]
		out.formFactors[i] = cs.formFactors[r]
		out.pubYears[i] = cs.pubYears[r]
		out.pubQuarters[i] = cs.pubQuarters[r]
		out.hwYears[i] = cs.hwYears[r]
		out.hwQuarters[i] = cs.hwQuarters[r]
		out.nodes[i] = cs.nodes[r]
		out.chips[i] = cs.chips[r]
		out.coresPerChip[i] = cs.coresPerChip[r]
		out.codenames[i] = cs.codenames[r]
		out.nominalGHz[i] = cs.nominalGHz[r]
		out.memoryGB[i] = cs.memoryGB[r]
		out.idleWatts[i] = cs.idleWatts[r]
		dst, src := out.levelOff[i], cs.levelOff[r]
		width := out.levelOff[i+1] - dst
		copy(out.levelTarget[dst:dst+width], cs.levelTarget[src:src+width])
		copy(out.levelActual[dst:dst+width], cs.levelActual[src:src+width])
		copy(out.levelOps[dst:dst+width], cs.levelOps[src:src+width])
		copy(out.levelPower[dst:dst+width], cs.levelPower[src:src+width])
		if od != nil {
			od.eps[i] = d.eps[r]
			od.ees[i] = d.ees[r]
			od.peakEEs[i] = d.peakEEs[r]
			od.peakEEUtils[i] = d.peakEEUtils[r]
			od.idleFracs[i] = d.idleFracs[r]
			od.dynRanges[i] = d.dynRanges[r]
			od.peakOverFull[i] = d.peakOverFull[r]
			od.linearDevs[i] = d.linearDevs[r]
			od.curveOK[i] = d.curveOK[r]
			od.compliant[i] = d.compliant[r]
			copy(od.levelEE[dst:dst+width], d.levelEE[src:src+width])
			sdst, ssrc := od.spotOff[i], d.spotOff[r]
			swidth := od.spotOff[i+1] - sdst
			copy(od.spots[sdst:sdst+swidth], d.spots[ssrc:ssrc+swidth])
		}
	})
	if od != nil {
		for i := 0; i < n; i++ {
			od.allCurvesOK = od.allCurvesOK && od.curveOK[i]
			od.allCompliant = od.allCompliant && od.compliant[i]
		}
		out.derived.Store(od)
	}
	return out
}

// ConcatColumns joins stores end to end. Derived layers are preserved
// only when every input store has one built.
func ConcatColumns(stores []*ColumnStore) *ColumnStore {
	rows, levels := 0, 0
	withDerived := true
	spotTotal := 0
	for _, s := range stores {
		rows += s.n
		levels += s.Levels()
		d := s.derived.Load()
		if d == nil {
			withDerived = false
		} else {
			spotTotal += len(d.spots)
		}
	}
	b := NewColumnBuilder(rows, levels, false)
	out := b.cs
	var od *derivedColumns
	if withDerived {
		od = &derivedColumns{
			spotOff:      append(make([]int32, 0, rows+1), 0),
			spots:        make([]float64, 0, spotTotal),
			levelEE:      make([]float64, 0, levels),
			allCurvesOK:  true,
			allCompliant: true,
		}
	}
	for _, s := range stores {
		out.ids = append(out.ids, s.ids...)
		out.vendors = append(out.vendors, s.vendors...)
		out.systems = append(out.systems, s.systems...)
		out.cpuModels = append(out.cpuModels, s.cpuModels...)
		out.jvms = append(out.jvms, s.jvms...)
		out.oss = append(out.oss, s.oss...)
		out.formFactors = append(out.formFactors, s.formFactors...)
		out.pubYears = append(out.pubYears, s.pubYears...)
		out.pubQuarters = append(out.pubQuarters, s.pubQuarters...)
		out.hwYears = append(out.hwYears, s.hwYears...)
		out.hwQuarters = append(out.hwQuarters, s.hwQuarters...)
		out.nodes = append(out.nodes, s.nodes...)
		out.chips = append(out.chips, s.chips...)
		out.coresPerChip = append(out.coresPerChip, s.coresPerChip...)
		out.codenames = append(out.codenames, s.codenames...)
		out.nominalGHz = append(out.nominalGHz, s.nominalGHz...)
		out.memoryGB = append(out.memoryGB, s.memoryGB...)
		out.idleWatts = append(out.idleWatts, s.idleWatts...)
		base := int32(len(out.levelTarget))
		for i := 1; i <= s.n; i++ {
			out.levelOff = append(out.levelOff, base+s.levelOff[i])
		}
		out.levelTarget = append(out.levelTarget, s.levelTarget...)
		out.levelActual = append(out.levelActual, s.levelActual...)
		out.levelOps = append(out.levelOps, s.levelOps...)
		out.levelPower = append(out.levelPower, s.levelPower...)
		out.n += s.n
		if withDerived {
			d := s.derived.Load()
			od.eps = append(od.eps, d.eps...)
			od.ees = append(od.ees, d.ees...)
			od.peakEEs = append(od.peakEEs, d.peakEEs...)
			od.peakEEUtils = append(od.peakEEUtils, d.peakEEUtils...)
			od.idleFracs = append(od.idleFracs, d.idleFracs...)
			od.dynRanges = append(od.dynRanges, d.dynRanges...)
			od.peakOverFull = append(od.peakOverFull, d.peakOverFull...)
			od.linearDevs = append(od.linearDevs, d.linearDevs...)
			od.levelEE = append(od.levelEE, d.levelEE...)
			sbase := int32(len(od.spots))
			for i := 1; i <= s.n; i++ {
				od.spotOff = append(od.spotOff, sbase+d.spotOff[i])
			}
			od.spots = append(od.spots, d.spots...)
			od.curveOK = append(od.curveOK, d.curveOK...)
			od.compliant = append(od.compliant, d.compliant...)
			od.allCurvesOK = od.allCurvesOK && d.allCurvesOK
			od.allCompliant = od.allCompliant && d.allCompliant
		}
	}
	if withDerived {
		out.derived.Store(od)
	}
	return out
}

// checkConsistent validates the internal invariants of a decoded store
// (offsets monotone, columns index-aligned); decoders call it before
// returning untrusted data.
func (cs *ColumnStore) checkConsistent() error {
	n := cs.n
	if len(cs.ids) != n || len(cs.vendors) != n || len(cs.systems) != n ||
		len(cs.cpuModels) != n || len(cs.jvms) != n || len(cs.oss) != n ||
		len(cs.formFactors) != n || len(cs.pubYears) != n || len(cs.pubQuarters) != n ||
		len(cs.hwYears) != n || len(cs.hwQuarters) != n || len(cs.nodes) != n ||
		len(cs.chips) != n || len(cs.coresPerChip) != n || len(cs.codenames) != n ||
		len(cs.nominalGHz) != n || len(cs.memoryGB) != n || len(cs.idleWatts) != n ||
		len(cs.levelOff) != n+1 {
		return fmt.Errorf("dataset: column store columns not aligned at %d rows", n)
	}
	if cs.levelOff[0] != 0 {
		return fmt.Errorf("dataset: level offsets start at %d, want 0", cs.levelOff[0])
	}
	for i := 0; i < n; i++ {
		if cs.levelOff[i+1] < cs.levelOff[i] {
			return fmt.Errorf("dataset: level offsets decrease at row %d", i)
		}
	}
	total := int(cs.levelOff[n])
	if len(cs.levelTarget) != total || len(cs.levelActual) != total ||
		len(cs.levelOps) != total || len(cs.levelPower) != total {
		return fmt.Errorf("dataset: level columns not aligned at %d levels", total)
	}
	return nil
}
