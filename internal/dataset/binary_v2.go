package dataset

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"unsafe"
)

// EPFB v2: the sectioned columnar layout of the binary corpus codec.
// Where v1 streams one length-prefixed record per result, v2 streams
// chunks of rows with one section per column:
//
//	magic "EPFB" | uvarint version=2
//	repeated chunks until EOF:
//	  uvarint rowCount | uvarint sectionCount
//	  repeated sections: uvarint sectionID | uvarint byteLen | payload
//
// Section payloads hold one column for every row of the chunk:
//
//   - string columns: rowCount uvarint lengths, then the concatenated
//     bytes (decoded with a single string conversion per section);
//   - integer columns: rowCount zigzag varints;
//   - float columns: rowCount raw 8-byte little-endian IEEE 754 values,
//     bulk-read into the preallocated column;
//   - the level-count column: rowCount uvarints, defining the chunk's
//     flattened level total;
//   - level float columns: levelTotal raw 8-byte floats.
//
// The writer emits sections in ascending ID order; the reader requires
// only that the level-count section precede the level float sections,
// and skips unknown section IDs, so future columns can be added without
// breaking old readers. Float bytes are identical to v1's, so a
// v2 round trip is bit-for-bit equal to the v1 path.

const (
	binaryVersionColumnar = 2

	// maxChunkRows bounds one chunk's row count so a corrupt header
	// fails cleanly instead of attempting a huge allocation.
	maxChunkRows = 1 << 20
	// maxColumnSection bounds one section's payload (128 MiB covers
	// maxChunkRows levels at 8 bytes with headroom).
	maxColumnSection = 1 << 27

	// colChunkRows is the writer's chunk size: large enough that
	// section framing is noise, small enough to bound writer and
	// reader scratch memory during streaming.
	colChunkRows = 1 << 16
)

// Section IDs of the v2 layout.
const (
	secID uint64 = iota + 1
	secVendor
	secSystem
	secCPUModel
	secJVM
	secOS
	secFormFactor
	secPubYear
	secPubQuarter
	secHWYear
	secHWQuarter
	secNodes
	secChips
	secCoresPerChip
	secCodename
	secNominalGHz
	secMemoryGB
	secIdleWatts
	secLevelCounts
	secLevelTarget
	secLevelActual
	secLevelOps
	secLevelPower

	numSections = int(secLevelPower)
)

// ColumnWriter streams column stores into the EPFB v2 encoding, one
// chunk per WriteChunk call (large stores are split internally). It is
// the bounded-memory path: specgen writes a fleet shard by shard
// without ever holding the full corpus.
type ColumnWriter struct {
	w   *bufio.Writer
	buf []byte
}

// NewColumnWriter writes the v2 format header and returns a writer.
// Call Flush after the last chunk.
func NewColumnWriter(w io.Writer) (*ColumnWriter, error) {
	cw := &ColumnWriter{w: bufio.NewWriter(w)}
	if _, err := cw.w.Write(binaryMagic[:]); err != nil {
		return nil, fmt.Errorf("dataset: write binary header: %w", err)
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], binaryVersionColumnar)
	if _, err := cw.w.Write(hdr[:n]); err != nil {
		return nil, fmt.Errorf("dataset: write binary header: %w", err)
	}
	return cw, nil
}

// WriteChunk appends the store's rows, splitting into chunks of at most
// colChunkRows.
func (cw *ColumnWriter) WriteChunk(cs *ColumnStore) error {
	for lo := 0; lo < cs.n; lo += colChunkRows {
		hi := lo + colChunkRows
		if hi > cs.n {
			hi = cs.n
		}
		if err := cw.writeChunkRange(cs, lo, hi); err != nil {
			return err
		}
	}
	return nil
}

// Flush drains the writer's buffer to the underlying stream.
func (cw *ColumnWriter) Flush() error {
	if err := cw.w.Flush(); err != nil {
		return fmt.Errorf("dataset: flush binary: %w", err)
	}
	return nil
}

func (cw *ColumnWriter) writeChunkRange(cs *ColumnStore, lo, hi int) error {
	rows := hi - lo
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(rows))
	n += binary.PutUvarint(hdr[n:], uint64(numSections))
	if _, err := cw.w.Write(hdr[:n]); err != nil {
		return fmt.Errorf("dataset: write binary chunk header: %w", err)
	}
	llo, lhi := cs.levelOff[lo], cs.levelOff[hi]
	appendStrings := func(b []byte, col []string) []byte {
		for _, s := range col[lo:hi] {
			b = appendUvarint(b, uint64(len(s)))
		}
		for _, s := range col[lo:hi] {
			b = append(b, s...)
		}
		return b
	}
	appendFloats := func(b []byte, col []float64) []byte {
		for _, v := range col {
			b = appendFloat(b, v)
		}
		return b
	}
	sections := []struct {
		id     uint64
		encode func([]byte) []byte
	}{
		{secID, func(b []byte) []byte { return appendStrings(b, cs.ids) }},
		{secVendor, func(b []byte) []byte { return appendStrings(b, cs.vendors) }},
		{secSystem, func(b []byte) []byte { return appendStrings(b, cs.systems) }},
		{secCPUModel, func(b []byte) []byte { return appendStrings(b, cs.cpuModels) }},
		{secJVM, func(b []byte) []byte { return appendStrings(b, cs.jvms) }},
		{secOS, func(b []byte) []byte { return appendStrings(b, cs.oss) }},
		{secFormFactor, func(b []byte) []byte {
			for _, v := range cs.formFactors[lo:hi] {
				b = appendVarint(b, int64(v))
			}
			return b
		}},
		{secPubYear, func(b []byte) []byte { return appendVarint32s(b, cs.pubYears[lo:hi]) }},
		{secPubQuarter, func(b []byte) []byte { return appendVarint32s(b, cs.pubQuarters[lo:hi]) }},
		{secHWYear, func(b []byte) []byte { return appendVarint32s(b, cs.hwYears[lo:hi]) }},
		{secHWQuarter, func(b []byte) []byte { return appendVarint32s(b, cs.hwQuarters[lo:hi]) }},
		{secNodes, func(b []byte) []byte { return appendVarint32s(b, cs.nodes[lo:hi]) }},
		{secChips, func(b []byte) []byte { return appendVarint32s(b, cs.chips[lo:hi]) }},
		{secCoresPerChip, func(b []byte) []byte { return appendVarint32s(b, cs.coresPerChip[lo:hi]) }},
		{secCodename, func(b []byte) []byte {
			for _, v := range cs.codenames[lo:hi] {
				b = appendVarint(b, int64(v))
			}
			return b
		}},
		{secNominalGHz, func(b []byte) []byte { return appendFloats(b, cs.nominalGHz[lo:hi]) }},
		{secMemoryGB, func(b []byte) []byte { return appendFloats(b, cs.memoryGB[lo:hi]) }},
		{secIdleWatts, func(b []byte) []byte { return appendFloats(b, cs.idleWatts[lo:hi]) }},
		{secLevelCounts, func(b []byte) []byte {
			for i := lo; i < hi; i++ {
				b = appendUvarint(b, uint64(cs.levelOff[i+1]-cs.levelOff[i]))
			}
			return b
		}},
		{secLevelTarget, func(b []byte) []byte { return appendFloats(b, cs.levelTarget[llo:lhi]) }},
		{secLevelActual, func(b []byte) []byte { return appendFloats(b, cs.levelActual[llo:lhi]) }},
		{secLevelOps, func(b []byte) []byte { return appendFloats(b, cs.levelOps[llo:lhi]) }},
		{secLevelPower, func(b []byte) []byte { return appendFloats(b, cs.levelPower[llo:lhi]) }},
	}
	for _, sec := range sections {
		cw.buf = sec.encode(cw.buf[:0])
		var shdr [2 * binary.MaxVarintLen64]byte
		n := binary.PutUvarint(shdr[:], sec.id)
		n += binary.PutUvarint(shdr[n:], uint64(len(cw.buf)))
		if _, err := cw.w.Write(shdr[:n]); err != nil {
			return fmt.Errorf("dataset: write binary section %d: %w", sec.id, err)
		}
		if _, err := cw.w.Write(cw.buf); err != nil {
			return fmt.Errorf("dataset: write binary section %d: %w", sec.id, err)
		}
	}
	return nil
}

func appendVarint32s(b []byte, col []int32) []byte {
	for _, v := range col {
		b = appendVarint(b, int64(v))
	}
	return b
}

// WriteColumns writes the store in the EPFB v2 columnar encoding.
func WriteColumns(w io.Writer, cs *ColumnStore) error {
	cw, err := NewColumnWriter(w)
	if err != nil {
		return err
	}
	if err := cw.WriteChunk(cs); err != nil {
		return err
	}
	return cw.Flush()
}

// ReadColumns parses a binary corpus into a ColumnStore. Both layouts
// are accepted: v2 decodes with per-column bulk reads; v1 records are
// appended row by row.
func ReadColumns(r io.Reader) (*ColumnStore, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	version, err := readBinaryHeader(br)
	if err != nil {
		return nil, err
	}
	switch version {
	case binaryVersion:
		b := NewColumnBuilder(0, 0, false)
		rr := &BinaryReader{r: br}
		for {
			res, err := rr.Read()
			if err == io.EOF {
				return b.Store(), nil
			}
			if err != nil {
				return nil, err
			}
			b.Append(res)
		}
	case binaryVersionColumnar:
		return readColumnsV2(br)
	default:
		return nil, fmt.Errorf("dataset: unsupported binary version %d", version)
	}
}

// readBinaryHeader consumes the magic and version.
func readBinaryHeader(br *bufio.Reader) (uint64, error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, fmt.Errorf("dataset: read binary header: %w", err)
	}
	if magic != binaryMagic {
		return 0, fmt.Errorf("dataset: bad binary magic %q", magic[:])
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("dataset: read binary version: %w", err)
	}
	return version, nil
}

func readColumnsV2(br *bufio.Reader) (*ColumnStore, error) {
	cs := &ColumnStore{levelOff: []int32{0}}
	src := &streamSections{br: br}
	for {
		rows, err := binary.ReadUvarint(br)
		if err == io.EOF {
			if err := cs.checkConsistent(); err != nil {
				return nil, err
			}
			return cs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read binary chunk header: %w", err)
		}
		if rows == 0 || rows > maxChunkRows {
			return nil, fmt.Errorf("dataset: binary chunk row count %d out of range [1,%d]", rows, maxChunkRows)
		}
		nSections, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("dataset: read binary chunk header: %w", err)
		}
		if nSections > 1<<10 {
			return nil, fmt.Errorf("dataset: binary chunk section count %d out of range", nSections)
		}
		if err := cs.decodeChunk(int(rows), int(nSections), src); err != nil {
			return nil, err
		}
	}
}

// ReadColumnsBytes parses an in-memory binary corpus into a ColumnStore.
// For v2 input this is the fastest load path: a header pre-scan sizes
// every column up front and section payloads are sliced from data
// rather than copied through a streaming buffer. The store does not
// retain data. Other inputs (v1, corrupt headers) take the ReadColumns
// path, so the two entry points accept exactly the same bytes.
func ReadColumnsBytes(data []byte) (*ColumnStore, error) {
	hdr := len(binaryMagic)
	if len(data) < hdr+1 || [4]byte(data[:hdr]) != binaryMagic {
		return ReadColumns(bytes.NewReader(data))
	}
	version, n := binary.Uvarint(data[hdr:])
	if n <= 0 || version != binaryVersionColumnar {
		return ReadColumns(bytes.NewReader(data))
	}
	return decodeColumnsV2Bytes(data[hdr+n:])
}

func decodeColumnsV2Bytes(body []byte) (*ColumnStore, error) {
	rowsHint, levelsHint := prescanColumnsV2(body)
	cs := NewColumnBuilder(rowsHint, levelsHint, false).cs
	src := &byteSections{body: body}
	for src.off < len(body) {
		rows, n := binary.Uvarint(body[src.off:])
		if n <= 0 {
			return nil, fmt.Errorf("dataset: read binary chunk header: %w", io.ErrUnexpectedEOF)
		}
		src.off += n
		if rows == 0 || rows > maxChunkRows {
			return nil, fmt.Errorf("dataset: binary chunk row count %d out of range [1,%d]", rows, maxChunkRows)
		}
		nSections, n := binary.Uvarint(body[src.off:])
		if n <= 0 {
			return nil, fmt.Errorf("dataset: read binary chunk header: %w", io.ErrUnexpectedEOF)
		}
		src.off += n
		if nSections > 1<<10 {
			return nil, fmt.Errorf("dataset: binary chunk section count %d out of range", nSections)
		}
		if err := cs.decodeChunk(int(rows), int(nSections), src); err != nil {
			return nil, err
		}
	}
	if err := cs.checkConsistent(); err != nil {
		return nil, err
	}
	return cs, nil
}

// prescanColumnsV2 walks the chunk framing without decoding payloads
// and returns capacity hints for the row and level columns. The hints
// are exact for well-formed input; for corrupt input they are clamped
// by the bytes actually present (each well-formed row costs at least
// 40 encoded bytes), so a tiny hostile file cannot demand a huge
// allocation. Decode falls back to growTail if a hint is low.
func prescanColumnsV2(body []byte) (rowsHint, levelsHint int) {
	off := 0
scan:
	for off < len(body) {
		rows, n := binary.Uvarint(body[off:])
		if n <= 0 || rows == 0 || rows > maxChunkRows {
			break
		}
		off += n
		nSections, n := binary.Uvarint(body[off:])
		if n <= 0 || nSections > 1<<10 {
			break
		}
		off += n
		chunkRows := int(rows)
		for s := 0; s < int(nSections); s++ {
			id, n := binary.Uvarint(body[off:])
			if n <= 0 {
				break scan
			}
			off += n
			size, n := binary.Uvarint(body[off:])
			if n <= 0 {
				break scan
			}
			off += n
			if size > uint64(len(body)-off) {
				break scan
			}
			if id == secLevelCounts && int(size) < chunkRows {
				chunkRows = int(size) // each row's level count is ≥1 byte
			}
			if id == secLevelTarget {
				levelsHint += int(size) / 8
			}
			off += int(size)
		}
		rowsHint += chunkRows
	}
	if max := len(body) / 40; rowsHint > max {
		rowsHint = max
	}
	return rowsHint, levelsHint
}

// sectionSource yields one chunk's section payloads in stream order.
// The returned payload is valid only until the next call.
type sectionSource interface {
	next() (id uint64, payload []byte, err error)
}

// streamSections reads sections from a buffered stream into a reused
// scratch buffer.
type streamSections struct {
	br      *bufio.Reader
	scratch []byte
}

func (s *streamSections) next() (uint64, []byte, error) {
	id, err := binary.ReadUvarint(s.br)
	if err != nil {
		return 0, nil, fmt.Errorf("dataset: read binary section header: %w", err)
	}
	size, err := binary.ReadUvarint(s.br)
	if err != nil {
		return 0, nil, fmt.Errorf("dataset: read binary section header: %w", err)
	}
	if size > maxColumnSection {
		return 0, nil, fmt.Errorf("dataset: binary section %d length %d exceeds limit %d", id, size, maxColumnSection)
	}
	if cap(s.scratch) < int(size) {
		// Overshoot: the level float sections near the end of each chunk
		// are the largest, so exact growth steps would each allocate
		// (and the runtime zero) a buffer the next section outgrows.
		s.scratch = make([]byte, int(size)+int(size)/2)
	}
	payload := s.scratch[:size]
	if _, err := io.ReadFull(s.br, payload); err != nil {
		return 0, nil, fmt.Errorf("dataset: read binary section %d: %w", id, err)
	}
	return id, payload, nil
}

// byteSections slices sections straight out of an in-memory corpus.
type byteSections struct {
	body []byte
	off  int
}

func (s *byteSections) next() (uint64, []byte, error) {
	id, n := binary.Uvarint(s.body[s.off:])
	if n <= 0 {
		return 0, nil, fmt.Errorf("dataset: read binary section header: %w", io.ErrUnexpectedEOF)
	}
	s.off += n
	size, n := binary.Uvarint(s.body[s.off:])
	if n <= 0 {
		return 0, nil, fmt.Errorf("dataset: read binary section header: %w", io.ErrUnexpectedEOF)
	}
	s.off += n
	if size > maxColumnSection {
		return 0, nil, fmt.Errorf("dataset: binary section %d length %d exceeds limit %d", id, size, maxColumnSection)
	}
	if size > uint64(len(s.body)-s.off) {
		return 0, nil, fmt.Errorf("dataset: read binary section %d: %w", id, io.ErrUnexpectedEOF)
	}
	payload := s.body[s.off : s.off+int(size)]
	s.off += int(size)
	return id, payload, nil
}

// decodeChunk appends one chunk's sections to the store's columns.
func (cs *ColumnStore) decodeChunk(rows, nSections int, src sectionSource) error {
	var seen uint32  // bitmask of the known section IDs decoded so far
	levelTotal := -1 // unknown until secLevelCounts
	for s := 0; s < nSections; s++ {
		id, payload, err := src.next()
		if err != nil {
			return err
		}
		if id >= 1 && id <= uint64(numSections) {
			if seen&(1<<id) != 0 {
				return fmt.Errorf("dataset: duplicate binary section %d", id)
			}
			seen |= 1 << id
		}
		if id >= secLevelTarget && id <= secLevelPower && levelTotal < 0 {
			return fmt.Errorf("dataset: binary section %d precedes level counts", id)
		}
		if err := cs.decodeSection(id, payload, rows, levelTotal); err != nil {
			return err
		}
		if id == secLevelCounts {
			levelTotal = int(cs.levelOff[len(cs.levelOff)-1] - cs.levelOff[len(cs.levelOff)-1-rows])
		}
	}
	for id := uint64(1); id <= uint64(numSections); id++ {
		if seen&(1<<id) == 0 {
			return fmt.Errorf("dataset: binary chunk missing section %d", id)
		}
	}
	cs.n += rows
	return nil
}

// growTail extends col by n elements and returns the freshly appended
// tail for the caller to fill by index. Capacity at least doubles on
// reallocation so a multi-chunk stream costs O(n) amortized copying;
// the hot decode paths write through the returned tail instead of
// appending element-wise (or splicing in a zeroed temporary), which is
// where the v2 reader previously spent most of its time.
func growTail[T any](col *[]T, n int) []T {
	s := *col
	need := len(s) + n
	if need > cap(s) {
		newCap := 2 * cap(s)
		if newCap < need {
			newCap = need
		}
		t := make([]T, len(s), newCap)
		copy(t, s)
		s = t
	}
	s = s[:need]
	*col = s
	return s[need-n:]
}

// decodeSection bulk-decodes one column section into the store.
// Unknown section IDs are skipped for forward compatibility.
func (cs *ColumnStore) decodeSection(id uint64, payload []byte, rows, levelTotal int) error {
	switch id {
	case secID:
		return decodeStringColumn(id, payload, rows, &cs.ids)
	case secVendor:
		return decodeStringColumn(id, payload, rows, &cs.vendors)
	case secSystem:
		return decodeStringColumn(id, payload, rows, &cs.systems)
	case secCPUModel:
		return decodeStringColumn(id, payload, rows, &cs.cpuModels)
	case secJVM:
		return decodeStringColumn(id, payload, rows, &cs.jvms)
	case secOS:
		return decodeStringColumn(id, payload, rows, &cs.oss)
	case secFormFactor:
		return decodeVarintColumn(id, payload, rows, &cs.formFactors)
	case secPubYear:
		return decodeVarintColumn(id, payload, rows, &cs.pubYears)
	case secPubQuarter:
		return decodeVarintColumn(id, payload, rows, &cs.pubQuarters)
	case secHWYear:
		return decodeVarintColumn(id, payload, rows, &cs.hwYears)
	case secHWQuarter:
		return decodeVarintColumn(id, payload, rows, &cs.hwQuarters)
	case secNodes:
		return decodeVarintColumn(id, payload, rows, &cs.nodes)
	case secChips:
		return decodeVarintColumn(id, payload, rows, &cs.chips)
	case secCoresPerChip:
		return decodeVarintColumn(id, payload, rows, &cs.coresPerChip)
	case secCodename:
		return decodeVarintColumn(id, payload, rows, &cs.codenames)
	case secNominalGHz:
		return decodeFloatColumn(id, payload, rows, &cs.nominalGHz)
	case secMemoryGB:
		return decodeFloatColumn(id, payload, rows, &cs.memoryGB)
	case secIdleWatts:
		return decodeFloatColumn(id, payload, rows, &cs.idleWatts)
	case secLevelCounts:
		// On any decode error the whole store is discarded, so the
		// pre-grown tail never leaks partially filled offsets.
		base := cs.levelOff[len(cs.levelOff)-1]
		dst := growTail(&cs.levelOff, rows)
		total := uint64(0)
		for i := 0; i < rows; i++ {
			v, n := uvarintFast(payload)
			if n <= 0 {
				return fmt.Errorf("dataset: binary section %d truncated at row %d", id, i)
			}
			payload = payload[n:]
			total += v
			if total > maxColumnSection/8 || uint64(base)+total > 1<<31-1 {
				return fmt.Errorf("dataset: binary chunk level total %d exceeds limit", total)
			}
			dst[i] = base + int32(total)
		}
		if len(payload) != 0 {
			return fmt.Errorf("dataset: binary section %d has %d trailing bytes", id, len(payload))
		}
		return nil
	case secLevelTarget:
		return decodeFloatColumn(id, payload, levelTotal, &cs.levelTarget)
	case secLevelActual:
		return decodeFloatColumn(id, payload, levelTotal, &cs.levelActual)
	case secLevelOps:
		return decodeFloatColumn(id, payload, levelTotal, &cs.levelOps)
	case secLevelPower:
		return decodeFloatColumn(id, payload, levelTotal, &cs.levelPower)
	default:
		return nil // unknown section: skip
	}
}

// uvarintFast is binary.Uvarint with branch-light fast paths for the
// one- and two-byte encodings that dominate column payloads (string
// lengths, level counts, years, core counts).
func uvarintFast(p []byte) (uint64, int) {
	if len(p) > 0 && p[0] < 0x80 {
		return uint64(p[0]), 1
	}
	if len(p) > 1 && p[1] < 0x80 {
		return uint64(p[0]&0x7f) | uint64(p[1])<<7, 2
	}
	return binary.Uvarint(p)
}

// varintFast is binary.Varint built on uvarintFast; the zigzag decode
// matches encoding/binary exactly.
func varintFast(p []byte) (int64, int) {
	ux, n := uvarintFast(p)
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x, n
}

// decodeStringColumn decodes rows length prefixes followed by the
// concatenated bytes. The length headers are scanned twice — once to
// validate and locate the blob, once to slice it — so the section costs
// one string conversion plus the column tail, with no scratch slice.
func decodeStringColumn(id uint64, payload []byte, rows int, col *[]string) error {
	p := payload
	total := 0
	for i := 0; i < rows; i++ {
		v, n := uvarintFast(p)
		if n <= 0 {
			return fmt.Errorf("dataset: binary section %d truncated at row %d", id, i)
		}
		p = p[n:]
		if v > uint64(len(p)) {
			return fmt.Errorf("dataset: binary section %d string length %d exceeds payload", id, v)
		}
		total += int(v)
	}
	if len(p) != total {
		return fmt.Errorf("dataset: binary section %d blob length %d, want %d", id, len(p), total)
	}
	blob := string(p)
	dst := growTail(col, rows)
	off := 0
	for i := range dst {
		v, n := uvarintFast(payload)
		payload = payload[n:]
		dst[i] = blob[off : off+int(v)]
		off += int(v)
	}
	return nil
}

// decodeVarintColumn decodes rows zigzag varints straight into the
// integer column's pre-grown tail.
func decodeVarintColumn[T ~int | ~int32](id uint64, payload []byte, rows int, col *[]T) error {
	dst := growTail(col, rows)
	for i := range dst {
		v, n := varintFast(payload)
		if n <= 0 {
			return fmt.Errorf("dataset: binary section %d truncated at row %d", id, i)
		}
		payload = payload[n:]
		dst[i] = T(v)
	}
	if len(payload) != 0 {
		return fmt.Errorf("dataset: binary section %d has %d trailing bytes", id, len(payload))
	}
	return nil
}

// hostLittleEndian reports whether float64 memory already matches the
// wire byte order, enabling the bulk-copy float decode.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// decodeFloatColumn bulk-reads count raw 8-byte little-endian floats
// into the column's pre-grown tail. On little-endian hosts the payload
// is the column's exact memory image, so the decode is one copy; the
// bits stored are identical either way.
func decodeFloatColumn(id uint64, payload []byte, count int, col *[]float64) error {
	if len(payload) != 8*count {
		return fmt.Errorf("dataset: binary section %d length %d, want %d", id, len(payload), 8*count)
	}
	if count == 0 {
		return nil
	}
	dst := growTail(col, count)
	if hostLittleEndian {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 8*count), payload)
		return nil
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return nil
}
