// Package dataset models published SPECpower_ssj2008 results: the
// per-server disclosure (system configuration, dates, CPU, memory,
// node/chip population) together with the eleven power/performance
// measurement intervals. It provides compliance validation (the paper's
// 517 → 477 filtering step), CSV and JSON codecs, and a Repository with
// the filtering and grouping operations the analyses are built on.
package dataset

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/microarch"
)

// FormFactor is the chassis type disclosed with a result.
type FormFactor int

// Form factors appearing in SPECpower disclosures.
const (
	FormRack FormFactor = iota + 1
	FormTower
	FormBlade
	FormMultiNode
)

// String returns the disclosure name of the form factor.
func (f FormFactor) String() string {
	switch f {
	case FormRack:
		return "Rack"
	case FormTower:
		return "Tower"
	case FormBlade:
		return "Blade"
	case FormMultiNode:
		return "Multi Node"
	default:
		return "Unknown"
	}
}

// ParseFormFactor inverts String.
func ParseFormFactor(s string) (FormFactor, error) {
	switch s {
	case "Rack":
		return FormRack, nil
	case "Tower":
		return FormTower, nil
	case "Blade":
		return FormBlade, nil
	case "Multi Node":
		return FormMultiNode, nil
	default:
		return 0, fmt.Errorf("dataset: unknown form factor %q", s)
	}
}

// LoadLevel is one graduated measurement interval of a run.
type LoadLevel struct {
	// TargetLoad is the scheduled load fraction (0.10 .. 1.00).
	TargetLoad float64 `json:"target_load"`
	// ActualLoad is the achieved load fraction; compliant runs stay
	// within a small tolerance of the target.
	ActualLoad float64 `json:"actual_load"`
	// OpsPerSec is the measured throughput in ssj_ops.
	OpsPerSec float64 `json:"ssj_ops"`
	// AvgPowerWatts is the average active power over the interval.
	AvgPowerWatts float64 `json:"avg_power_watts"`
}

// Result is one SPECpower_ssj2008 submission as published by SPEC.
type Result struct {
	// ID is a stable identifier (SPEC publishes e.g. "power_ssj2008-20160823-00756").
	ID string `json:"id"`
	// Vendor is the submitting hardware vendor.
	Vendor string `json:"vendor"`
	// System is the marketed system name.
	System string `json:"system"`
	// FormFactor is the chassis type.
	FormFactor FormFactor `json:"form_factor"`

	// PublishedYear/Quarter is when SPEC published the result.
	PublishedYear    int `json:"published_year"`
	PublishedQuarter int `json:"published_quarter"`
	// HWAvailYear/Quarter is when the hardware became generally
	// available — the paper's preferred time axis.
	HWAvailYear    int `json:"hw_avail_year"`
	HWAvailQuarter int `json:"hw_avail_quarter"`

	// Nodes is the number of server nodes under test (1 for a single
	// node result; multi-node results aggregate identical nodes).
	Nodes int `json:"nodes"`
	// Chips is the total populated processor sockets across all nodes.
	Chips int `json:"chips"`
	// CoresPerChip is the core count of each processor.
	CoresPerChip int `json:"cores_per_chip"`
	// CPUModel is the disclosed processor model string.
	CPUModel string `json:"cpu_model"`
	// Codename is the processor generation (parsed or disclosed).
	Codename microarch.Codename `json:"codename"`
	// NominalGHz is the processor's nominal frequency.
	NominalGHz float64 `json:"nominal_ghz"`

	// MemoryGB is the total installed memory.
	MemoryGB float64 `json:"memory_gb"`
	// JVM and OS identify the software stack.
	JVM string `json:"jvm"`
	OS  string `json:"os"`

	// ActiveIdleWatts is the measured power with zero load.
	ActiveIdleWatts float64 `json:"active_idle_watts"`
	// Levels are the ten graduated measurement intervals ordered from
	// 10% to 100% target load.
	Levels []LoadLevel `json:"levels"`

	// memo holds the lazily-built *metrics bundle. Once any metric
	// accessor has run, the result's measurement fields (ActiveIdleWatts,
	// Levels) must be treated as frozen: later mutations are not observed
	// by the cache. Clone returns a copy with a fresh, empty cache, so
	// mutate-after-clone workflows stay correct.
	memo atomic.Value
}

// metrics is the immutable per-result bundle computed from the curve on
// first access: the validated curve itself plus every scalar the
// analyses read in hot loops. Invalid curves memoize the error and zero
// metrics, matching the zero-on-invalid contract of EP and OverallEE.
type metrics struct {
	curve *core.Curve
	err   error

	ep           float64
	overallEE    float64
	peakEE       float64
	peakEEUtils  []float64
	idleFraction float64
	dynamicRange float64
	peakOverFull float64
	linearDev    float64
}

// cached returns the memoized metrics, computing them on first use.
// Concurrent first calls may each compute the (identical, deterministic)
// bundle; one wins the publish and the duplicates are garbage. All
// subsequent calls are a single atomic load.
func (r *Result) cached() *metrics {
	if m, ok := r.memo.Load().(*metrics); ok {
		return m
	}
	m := &metrics{}
	m.curve, m.err = r.buildCurve()
	if m.err == nil {
		c := m.curve
		m.ep = c.EP()
		m.overallEE = c.OverallEE()
		m.peakEE, m.peakEEUtils = c.PeakEE()
		m.idleFraction = c.IdleFraction()
		m.dynamicRange = c.DynamicRange()
		m.peakOverFull = c.PeakOverFullRatio()
		m.linearDev = c.LinearDeviation()
	}
	r.memo.Store(m)
	return m
}

// TotalCores returns the total core count across all chips.
func (r *Result) TotalCores() int { return r.Chips * r.CoresPerChip }

// MemoryPerCore returns installed GB per core — the paper's MPC axis.
func (r *Result) MemoryPerCore() float64 {
	cores := r.TotalCores()
	if cores == 0 {
		return 0
	}
	return r.MemoryGB / float64(cores)
}

// ChipsPerNode returns populated sockets per node.
func (r *Result) ChipsPerNode() int {
	if r.Nodes == 0 {
		return 0
	}
	return r.Chips / r.Nodes
}

// buildCurve assembles the result's points into a validated core.Curve
// without touching the cache.
func (r *Result) buildCurve() (*core.Curve, error) {
	points := make([]core.Point, 0, len(r.Levels)+1)
	points = append(points, core.Point{Utilization: 0, PowerWatts: r.ActiveIdleWatts})
	for _, lv := range r.Levels {
		points = append(points, core.Point{
			Utilization: lv.TargetLoad,
			OpsPerSec:   lv.OpsPerSec,
			PowerWatts:  lv.AvgPowerWatts,
		})
	}
	c, err := core.NewCurve(points)
	if err != nil {
		return nil, fmt.Errorf("dataset: result %s: %w", r.ID, err)
	}
	return c, nil
}

// Curve returns the result's eleven points as a core.Curve. Results that
// fail curve validation are non-compliant by definition. The curve is
// memoized on first call and shared between callers; Curve is immutable,
// so sharing is safe.
func (r *Result) Curve() (*core.Curve, error) {
	m := r.cached()
	return m.curve, m.err
}

// MustCurve returns the curve of a result already known valid.
// It panics when the curve cannot be built; analyses call it only on
// results that passed Validate.
func (r *Result) MustCurve() *core.Curve {
	c, err := r.Curve()
	if err != nil {
		panic(err)
	}
	return c
}

// OverallEE returns the SPECpower score (overall ssj_ops per watt), or
// zero when the curve is invalid.
func (r *Result) OverallEE() float64 { return r.cached().overallEE }

// EP returns the result's energy proportionality (paper Eq. 1), or zero
// when the curve is invalid.
func (r *Result) EP() float64 { return r.cached().ep }

// PeakEE returns the result's peak energy efficiency and every
// utilization at which it occurs (ties included, ascending), or zeroes
// when the curve is invalid.
func (r *Result) PeakEE() (float64, []float64) {
	m := r.cached()
	return m.peakEE, append([]float64(nil), m.peakEEUtils...)
}

// PeakEEValue returns the result's peak energy efficiency without the
// tie utilizations — the allocation-free variant of PeakEE for hot
// aggregation loops. Zero when the curve is invalid.
func (r *Result) PeakEEValue() float64 { return r.cached().peakEE }

// PeakEEUtilization returns the lowest utilization at which the result
// attains its peak efficiency, or zero when the curve is invalid.
func (r *Result) PeakEEUtilization() float64 {
	m := r.cached()
	if len(m.peakEEUtils) == 0 {
		return 0
	}
	return m.peakEEUtils[0]
}

// IdleFraction returns idle power over full-load power, or zero when the
// curve is invalid.
func (r *Result) IdleFraction() float64 { return r.cached().idleFraction }

// DynamicRange returns the normalized power swing 1 − IdleFraction, or
// zero when the curve is invalid.
func (r *Result) DynamicRange() float64 { return r.cached().dynamicRange }

// PeakOverFullRatio returns peak efficiency over full-load efficiency,
// or zero when the curve is invalid.
func (r *Result) PeakOverFullRatio() float64 { return r.cached().peakOverFull }

// LinearDeviation returns the signed area between the normalized power
// curve and its idle-to-peak chord, or zero when the curve is invalid.
func (r *Result) LinearDeviation() float64 { return r.cached().linearDev }

// Clone returns a deep copy of the result with an empty metric cache:
// the clone computes its own metrics on first access and never shares
// cached state with its source, so cloned results are safe to mutate.
func (r *Result) Clone() *Result {
	out := *r
	out.memo = atomic.Value{}
	out.Levels = append([]LoadLevel(nil), r.Levels...)
	return &out
}
