// Package dataset models published SPECpower_ssj2008 results: the
// per-server disclosure (system configuration, dates, CPU, memory,
// node/chip population) together with the eleven power/performance
// measurement intervals. It provides compliance validation (the paper's
// 517 → 477 filtering step), CSV and JSON codecs, and a Repository with
// the filtering and grouping operations the analyses are built on.
package dataset

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/microarch"
)

// FormFactor is the chassis type disclosed with a result.
type FormFactor int

// Form factors appearing in SPECpower disclosures.
const (
	FormRack FormFactor = iota + 1
	FormTower
	FormBlade
	FormMultiNode
)

// String returns the disclosure name of the form factor.
func (f FormFactor) String() string {
	switch f {
	case FormRack:
		return "Rack"
	case FormTower:
		return "Tower"
	case FormBlade:
		return "Blade"
	case FormMultiNode:
		return "Multi Node"
	default:
		return "Unknown"
	}
}

// ParseFormFactor inverts String.
func ParseFormFactor(s string) (FormFactor, error) {
	switch s {
	case "Rack":
		return FormRack, nil
	case "Tower":
		return FormTower, nil
	case "Blade":
		return FormBlade, nil
	case "Multi Node":
		return FormMultiNode, nil
	default:
		return 0, fmt.Errorf("dataset: unknown form factor %q", s)
	}
}

// LoadLevel is one graduated measurement interval of a run.
type LoadLevel struct {
	// TargetLoad is the scheduled load fraction (0.10 .. 1.00).
	TargetLoad float64 `json:"target_load"`
	// ActualLoad is the achieved load fraction; compliant runs stay
	// within a small tolerance of the target.
	ActualLoad float64 `json:"actual_load"`
	// OpsPerSec is the measured throughput in ssj_ops.
	OpsPerSec float64 `json:"ssj_ops"`
	// AvgPowerWatts is the average active power over the interval.
	AvgPowerWatts float64 `json:"avg_power_watts"`
}

// Result is one SPECpower_ssj2008 submission as published by SPEC.
type Result struct {
	// ID is a stable identifier (SPEC publishes e.g. "power_ssj2008-20160823-00756").
	ID string `json:"id"`
	// Vendor is the submitting hardware vendor.
	Vendor string `json:"vendor"`
	// System is the marketed system name.
	System string `json:"system"`
	// FormFactor is the chassis type.
	FormFactor FormFactor `json:"form_factor"`

	// PublishedYear/Quarter is when SPEC published the result.
	PublishedYear    int `json:"published_year"`
	PublishedQuarter int `json:"published_quarter"`
	// HWAvailYear/Quarter is when the hardware became generally
	// available — the paper's preferred time axis.
	HWAvailYear    int `json:"hw_avail_year"`
	HWAvailQuarter int `json:"hw_avail_quarter"`

	// Nodes is the number of server nodes under test (1 for a single
	// node result; multi-node results aggregate identical nodes).
	Nodes int `json:"nodes"`
	// Chips is the total populated processor sockets across all nodes.
	Chips int `json:"chips"`
	// CoresPerChip is the core count of each processor.
	CoresPerChip int `json:"cores_per_chip"`
	// CPUModel is the disclosed processor model string.
	CPUModel string `json:"cpu_model"`
	// Codename is the processor generation (parsed or disclosed).
	Codename microarch.Codename `json:"codename"`
	// NominalGHz is the processor's nominal frequency.
	NominalGHz float64 `json:"nominal_ghz"`

	// MemoryGB is the total installed memory.
	MemoryGB float64 `json:"memory_gb"`
	// JVM and OS identify the software stack.
	JVM string `json:"jvm"`
	OS  string `json:"os"`

	// ActiveIdleWatts is the measured power with zero load.
	ActiveIdleWatts float64 `json:"active_idle_watts"`
	// Levels are the ten graduated measurement intervals ordered from
	// 10% to 100% target load.
	Levels []LoadLevel `json:"levels"`
}

// TotalCores returns the total core count across all chips.
func (r *Result) TotalCores() int { return r.Chips * r.CoresPerChip }

// MemoryPerCore returns installed GB per core — the paper's MPC axis.
func (r *Result) MemoryPerCore() float64 {
	cores := r.TotalCores()
	if cores == 0 {
		return 0
	}
	return r.MemoryGB / float64(cores)
}

// ChipsPerNode returns populated sockets per node.
func (r *Result) ChipsPerNode() int {
	if r.Nodes == 0 {
		return 0
	}
	return r.Chips / r.Nodes
}

// Curve assembles the result's eleven points into a core.Curve. Results
// that fail curve validation are non-compliant by definition.
func (r *Result) Curve() (*core.Curve, error) {
	points := make([]core.Point, 0, len(r.Levels)+1)
	points = append(points, core.Point{Utilization: 0, PowerWatts: r.ActiveIdleWatts})
	for _, lv := range r.Levels {
		points = append(points, core.Point{
			Utilization: lv.TargetLoad,
			OpsPerSec:   lv.OpsPerSec,
			PowerWatts:  lv.AvgPowerWatts,
		})
	}
	c, err := core.NewCurve(points)
	if err != nil {
		return nil, fmt.Errorf("dataset: result %s: %w", r.ID, err)
	}
	return c, nil
}

// MustCurve returns the curve of a result already known valid.
// It panics when the curve cannot be built; analyses call it only on
// results that passed Validate.
func (r *Result) MustCurve() *core.Curve {
	c, err := r.Curve()
	if err != nil {
		panic(err)
	}
	return c
}

// OverallEE returns the SPECpower score (overall ssj_ops per watt), or
// zero when the curve is invalid.
func (r *Result) OverallEE() float64 {
	c, err := r.Curve()
	if err != nil {
		return 0
	}
	return c.OverallEE()
}

// EP returns the result's energy proportionality (paper Eq. 1), or zero
// when the curve is invalid.
func (r *Result) EP() float64 {
	c, err := r.Curve()
	if err != nil {
		return 0
	}
	return c.EP()
}

// Clone returns a deep copy of the result.
func (r *Result) Clone() *Result {
	out := *r
	out.Levels = append([]LoadLevel(nil), r.Levels...)
	return &out
}
