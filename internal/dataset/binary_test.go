package dataset_test

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

// binaryTestCorpus returns a mixed corpus: the full default seed-1 set,
// including the non-compliant results with truncated level lists that
// exercise the codec's variable-length paths.
func binaryTestCorpus(t *testing.T) []*dataset.Result {
	t.Helper()
	rs, err := synth.Generate(synth.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func jsonBytes(t *testing.T, rs []*dataset.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dataset.WriteJSON(&buf, rs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinaryRoundTripExact pins full fidelity: a binary round trip
// reproduces every field of the source bit-for-bit (compared through
// the JSON form, whose shortest-representation floats are exact).
func TestBinaryRoundTripExact(t *testing.T) {
	src := binaryTestCorpus(t)
	var buf bytes.Buffer
	if err := dataset.WriteBinary(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := dataset.ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(src) {
		t.Fatalf("round trip returned %d results, want %d", len(got), len(src))
	}
	if !bytes.Equal(jsonBytes(t, got), jsonBytes(t, src)) {
		t.Error("binary round trip is not bit-identical to the source")
	}
}

// TestBinaryMatchesCSVAndJSONRoundTrip checks the acceptance contract:
// for standard ten-level results, reading back the binary form equals
// reading back the CSV and JSON forms bit-for-bit.
func TestBinaryMatchesCSVAndJSONRoundTrip(t *testing.T) {
	valid, err := synth.GenerateValid(synth.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	var bin, csv, js bytes.Buffer
	if err := dataset.WriteBinary(&bin, valid); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(&csv, valid); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteJSON(&js, valid); err != nil {
		t.Fatal(err)
	}

	fromBin, err := dataset.ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	fromCSV, err := dataset.ReadCSV(&csv)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := dataset.ReadJSON(&js)
	if err != nil {
		t.Fatal(err)
	}

	want := jsonBytes(t, fromBin)
	if !bytes.Equal(want, jsonBytes(t, fromCSV)) {
		t.Error("binary round trip differs from CSV round trip")
	}
	if !bytes.Equal(want, jsonBytes(t, fromJSON)) {
		t.Error("binary round trip differs from JSON round trip")
	}
}

// TestBinaryStreaming drives the incremental writer/reader pair
// record by record.
func TestBinaryStreaming(t *testing.T) {
	src := binaryTestCorpus(t)[:25]
	var buf bytes.Buffer
	bw, err := dataset.NewBinaryWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range src {
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br, err := dataset.NewBinaryReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		r, err := br.Read()
		if err == io.EOF {
			if i != len(src) {
				t.Fatalf("stream ended after %d records, want %d", i, len(src))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if r.ID != src[i].ID {
			t.Fatalf("record %d ID %q, want %q", i, r.ID, src[i].ID)
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	src := binaryTestCorpus(t)[:3]
	var buf bytes.Buffer
	if err := dataset.WriteBinary(&buf, src); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xFF
		if _, err := dataset.ReadBinary(bytes.NewReader(bad)); err == nil {
			t.Error("corrupt magic accepted")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[4] = 0x7F
		if _, err := dataset.ReadBinary(bytes.NewReader(bad)); err == nil {
			t.Error("unknown version accepted")
		}
	})
	t.Run("truncated record", func(t *testing.T) {
		if _, err := dataset.ReadBinary(bytes.NewReader(good[:len(good)-10])); err == nil {
			t.Error("truncated stream accepted")
		}
	})
	t.Run("oversized length prefix", func(t *testing.T) {
		bad := append([]byte(nil), good[:5]...)
		// A length prefix far beyond maxBinaryRecord.
		bad = append(bad, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F)
		if _, err := dataset.ReadBinary(bytes.NewReader(bad)); err == nil {
			t.Error("oversized record length accepted")
		}
	})
	t.Run("empty stream", func(t *testing.T) {
		if _, err := dataset.ReadBinary(bytes.NewReader(nil)); err == nil {
			t.Error("empty stream accepted")
		}
	})
}
