package dataset

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
)

// memoResult builds a small valid result for cache tests.
func memoResult(id string, idle float64) *Result {
	levels := make([]LoadLevel, 10)
	for i := range levels {
		u := float64(i+1) / 10
		levels[i] = LoadLevel{
			TargetLoad:    u,
			ActualLoad:    u,
			OpsPerSec:     1e6 * u,
			AvgPowerWatts: idle + (200-idle)*u,
		}
	}
	return &Result{
		ID:              id,
		Vendor:          "V",
		System:          "S",
		FormFactor:      FormRack,
		PublishedYear:   2016,
		HWAvailYear:     2016,
		Nodes:           1,
		Chips:           2,
		CoresPerChip:    8,
		NominalGHz:      2.2,
		MemoryGB:        64,
		ActiveIdleWatts: idle,
		Levels:          levels,
	}
}

// TestMetricsMemoized checks that repeated accessors return the same
// values and the same (shared) curve pointer.
func TestMetricsMemoized(t *testing.T) {
	r := memoResult("memo-1", 60)
	c1 := r.MustCurve()
	c2 := r.MustCurve()
	if c1 != c2 {
		t.Fatalf("MustCurve returned distinct curves across calls: %p vs %p", c1, c2)
	}
	if r.EP() != c1.EP() {
		t.Fatalf("memoized EP %.6f != curve EP %.6f", r.EP(), c1.EP())
	}
	if r.OverallEE() != c1.OverallEE() {
		t.Fatalf("memoized EE %.6f != curve EE %.6f", r.OverallEE(), c1.OverallEE())
	}
}

// TestMetricsInvalidCurve checks the zero-on-invalid contract survives
// memoization.
func TestMetricsInvalidCurve(t *testing.T) {
	r := memoResult("memo-bad", 60)
	r.Levels = r.Levels[:3] // too few levels: curve construction fails
	if _, err := r.Curve(); err == nil {
		t.Fatal("expected curve error for truncated result")
	}
	if r.EP() != 0 || r.OverallEE() != 0 || r.IdleFraction() != 0 {
		t.Fatalf("invalid result must report zero metrics, got EP=%v EE=%v idle=%v",
			r.EP(), r.OverallEE(), r.IdleFraction())
	}
	// The error must be memoized too: a second call returns the same.
	_, err1 := r.Curve()
	_, err2 := r.Curve()
	if err1 != err2 {
		t.Fatalf("curve error not memoized: %v vs %v", err1, err2)
	}
}

// TestConcurrentMetricAccess hammers the metric accessors from many
// goroutines. Run with -race: the memo publication must be safe even
// when every goroutine races on a cold cache.
func TestConcurrentMetricAccess(t *testing.T) {
	results := make([]*Result, 32)
	for i := range results {
		results[i] = memoResult("conc", 40+float64(i))
	}
	rp := NewRepository(results)

	const goroutines = 16
	var wg sync.WaitGroup
	eps := make([][]float64, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for _, r := range results {
				_ = r.MustCurve()
				eps[gi] = append(eps[gi], r.EP())
				_ = r.PeakEEValue()
				_ = r.IdleFraction()
			}
			_ = rp.EPs()
			_ = rp.SortByEP()
		}(gi)
	}
	wg.Wait()
	for gi := 1; gi < goroutines; gi++ {
		for i := range eps[0] {
			if eps[gi][i] != eps[0][i] {
				t.Fatalf("goroutine %d saw EP[%d]=%v, goroutine 0 saw %v",
					gi, i, eps[gi][i], eps[0][i])
			}
		}
	}
}

// TestCloneDoesNotShareCache verifies the memoization invalidation
// contract: a clone computes metrics from its own (possibly mutated)
// fields, and mutating the clone never disturbs the original's cache.
func TestCloneDoesNotShareCache(t *testing.T) {
	orig := memoResult("clone-src", 60)
	epBefore := orig.EP() // warm the original's cache first

	cl := orig.Clone()
	cl.ActiveIdleWatts = 20 // much lower idle → higher EP
	for i := range cl.Levels {
		cl.Levels[i].AvgPowerWatts = 20 + (200-20)*cl.Levels[i].TargetLoad
	}
	if cl.EP() == epBefore {
		t.Fatalf("clone EP %.6f equals original EP — cache shared across Clone", cl.EP())
	}
	if cl.EP() <= epBefore {
		t.Fatalf("lower idle should raise EP: clone %.6f vs original %.6f", cl.EP(), epBefore)
	}
	if orig.EP() != epBefore {
		t.Fatalf("original EP changed after clone mutation: %.6f vs %.6f", orig.EP(), epBefore)
	}
	// And the mutated original fields stay frozen in its cache: the
	// original's curve still reflects the pre-clone state.
	if got := orig.MustCurve().IdleFraction(); math.Abs(got-60.0/200.0) > 1e-12 {
		t.Fatalf("original idle fraction drifted: %v", got)
	}
}

// TestRepositoryColumnsInvalidatedByAdd checks Add drops the cached
// columns so later reads see the new result.
func TestRepositoryColumnsInvalidatedByAdd(t *testing.T) {
	rp := NewRepository([]*Result{memoResult("a", 60)})
	if n := len(rp.EPs()); n != 1 {
		t.Fatalf("want 1 EP, got %d", n)
	}
	rp.Add(memoResult("b", 80))
	eps := rp.EPs()
	if len(eps) != 2 {
		t.Fatalf("columns not invalidated by Add: got %d EPs", len(eps))
	}
	if eps[0] == eps[1] {
		t.Fatalf("distinct idle power must give distinct EPs, got %v", eps)
	}
}

// TestSortByEPMatchesDirectSort cross-checks the key-column sort
// against an independently computed ordering.
func TestSortByEPMatchesDirectSort(t *testing.T) {
	results := []*Result{
		memoResult("r1", 90),
		memoResult("r2", 30),
		memoResult("r3", 60),
		memoResult("r4", 45),
	}
	rp := NewRepository(results)
	sorted := rp.SortByEP()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].EP() > sorted[i].EP() {
			t.Fatalf("SortByEP out of order at %d: %.4f > %.4f",
				i, sorted[i-1].EP(), sorted[i].EP())
		}
	}
	if rp.All()[0].ID != "r1" {
		t.Fatal("SortByEP must not reorder the repository itself")
	}
	var _ *core.Curve = sorted[0].MustCurve() // sorted results stay usable
}
