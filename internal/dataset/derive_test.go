package dataset_test

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

// deriveTestCorpus is the seed-1 corpus plus tampered clones that
// exercise every branch of the columnar metric kernel: invalid curves,
// valid-but-non-compliant rows, and NaN measurements (which sail
// through every ordered comparison exactly like they do in Validate
// and core.NewCurve).
func deriveTestCorpus(t *testing.T) []*dataset.Result {
	t.Helper()
	rs := binaryTestCorpus(t)
	tamper := func(i int, mutate func(*dataset.Result)) {
		c := rs[i].Clone()
		c.ID = c.ID + "-tampered"
		mutate(c)
		rs = append(rs, c)
	}
	tamper(0, func(r *dataset.Result) { r.Levels[3].AvgPowerWatts = 0 })                 // invalid curve
	tamper(1, func(r *dataset.Result) { r.Levels = r.Levels[:5] })                       // grid ends below 1.0
	tamper(2, func(r *dataset.Result) { r.Levels[7].OpsPerSec = r.Levels[6].OpsPerSec }) // non-monotone ops
	tamper(3, func(r *dataset.Result) { r.HWAvailYear = 1999 })                          // out-of-window year
	tamper(4, func(r *dataset.Result) { r.Levels[2].ActualLoad = 0.9 })                  // load deviation
	tamper(5, func(r *dataset.Result) { r.ID = "" })                                     // missing id
	tamper(6, func(r *dataset.Result) { r.ActiveIdleWatts = r.Levels[9].AvgPowerWatts }) // idle ≥ full
	tamper(7, func(r *dataset.Result) { r.Levels[9].OpsPerSec = math.NaN() })            // NaN throughput
	tamper(8, func(r *dataset.Result) { r.Chips = 3; r.Nodes = 2 })                      // chips % nodes ≠ 0
	tamper(9, func(r *dataset.Result) {
		// Zero throughput everywhere: PeakEE's max stays 0, so every
		// level ties for the "peak" spot — the kernel must reproduce
		// that degenerate spot list too.
		for i := range r.Levels {
			r.Levels[i].OpsPerSec = 0
		}
	})
	return rs
}

// TestDerivedColumnsBitIdentical pins the columnar metric kernel
// (derive.go) against the memoized Result-bundle path: every derived
// column a column-born store computes from raw columns must equal,
// bit for bit, what the result-born store computes through core.Curve.
func TestDerivedColumnsBitIdentical(t *testing.T) {
	rs := deriveTestCorpus(t)
	colStore := dataset.NewColumnRepository(dataset.BuildColumns(rs)).Columns() // columnar kernel
	resStore := dataset.NewRepository(rs).Columns()                             // memoized bundles

	eqF := func(name string, got, want []float64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: len %d, want %d", name, len(got), len(want))
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s[%d]: %v (%#x) != %v (%#x)", name, i,
					got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
			}
		}
	}
	eqB := func(name string, got, want []bool) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: len %d, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s[%d]: %v, want %v", name, i, got[i], want[i])
			}
		}
	}
	eqI := func(name string, got, want []int32) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: len %d, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s[%d]: %d, want %d", name, i, got[i], want[i])
			}
		}
	}

	eqF("EP", colStore.EPCol(), resStore.EPCol())
	eqF("OverallEE", colStore.OverallEECol(), resStore.OverallEECol())
	eqF("PeakEE", colStore.PeakEECol(), resStore.PeakEECol())
	eqF("PeakEEUtil", colStore.PeakEEUtilCol(), resStore.PeakEEUtilCol())
	eqF("IdleFraction", colStore.IdleFractionCol(), resStore.IdleFractionCol())
	eqF("DynamicRange", colStore.DynamicRangeCol(), resStore.DynamicRangeCol())
	eqF("PeakOverFull", colStore.PeakOverFullCol(), resStore.PeakOverFullCol())
	eqF("LinearDev", colStore.LinearDevCol(), resStore.LinearDevCol())
	eqF("LevelEE", colStore.LevelEECol(), resStore.LevelEECol())
	eqI("PeakSpotOffsets", colStore.PeakSpotOffsets(), resStore.PeakSpotOffsets())
	eqF("PeakSpots", colStore.PeakSpotCol(), resStore.PeakSpotCol())
	eqB("CurveOK", colStore.CurveOKCol(), resStore.CurveOKCol())
	eqB("Compliance", colStore.ComplianceCol(), resStore.ComplianceCol())
	if colStore.AllCurvesOK() != resStore.AllCurvesOK() {
		t.Errorf("AllCurvesOK: %v, want %v", colStore.AllCurvesOK(), resStore.AllCurvesOK())
	}
	if colStore.AllCompliant() != resStore.AllCompliant() {
		t.Errorf("AllCompliant: %v, want %v", colStore.AllCompliant(), resStore.AllCompliant())
	}

	// The tampered tail must actually exercise the failure branches.
	ok := colStore.CurveOKCol()
	comp := colStore.ComplianceCol()
	n := colStore.Len()
	if ok[n-10] || ok[n-9] {
		t.Error("tampered curves still report valid")
	}
	if comp[n-8] || comp[n-7] || comp[n-6] || comp[n-5] || comp[n-4] || comp[n-2] {
		t.Error("tampered rows still report compliant")
	}
}
