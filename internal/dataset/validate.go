package dataset

import (
	"errors"
	"fmt"
	"math"
)

// Compliance rule bounds. SPEC's run rules require the ten graduated
// levels at exact 10% steps with achieved load close to target; the
// date bounds reflect the study window (hardware availability 2004-2016,
// benchmark releases from 2007).
const (
	// loadTolerance is the allowed |actual − target| deviation.
	loadTolerance = 0.02
	minHWYear     = 2004
	maxHWYear     = 2016
	minPubYear    = 2007
	maxPubYear    = 2016
)

// ErrNonCompliant wraps every validation failure so callers can test
// with errors.Is.
var ErrNonCompliant = errors.New("dataset: non-compliant result")

// Validate checks a result against the compliance rules the paper's
// 517 → 477 filtering step applies. It returns nil for a compliant
// result and an error wrapping ErrNonCompliant describing the first
// violation otherwise.
func Validate(r *Result) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s: %s", ErrNonCompliant, r.ID, fmt.Sprintf(format, args...))
	}
	if r.ID == "" {
		return fail("missing id")
	}
	if len(r.Levels) != 10 {
		return fail("expected 10 load levels, got %d", len(r.Levels))
	}
	for i, lv := range r.Levels {
		want := float64(i+1) / 10
		if math.Abs(lv.TargetLoad-want) > 1e-9 {
			return fail("level %d target load %v, want %v", i, lv.TargetLoad, want)
		}
		if lv.AvgPowerWatts <= 0 {
			return fail("level %d has non-positive power %v", i, lv.AvgPowerWatts)
		}
		if lv.OpsPerSec <= 0 {
			return fail("level %d has non-positive throughput %v", i, lv.OpsPerSec)
		}
		if math.Abs(lv.ActualLoad-lv.TargetLoad) > loadTolerance {
			return fail("level %d actual load %v deviates from target %v beyond %v",
				i, lv.ActualLoad, lv.TargetLoad, loadTolerance)
		}
		if i > 0 && lv.OpsPerSec <= r.Levels[i-1].OpsPerSec {
			return fail("throughput not increasing at level %d", i)
		}
	}
	if r.ActiveIdleWatts <= 0 {
		return fail("non-positive active idle power %v", r.ActiveIdleWatts)
	}
	if r.ActiveIdleWatts >= r.Levels[9].AvgPowerWatts {
		return fail("active idle power %v not below full-load power %v",
			r.ActiveIdleWatts, r.Levels[9].AvgPowerWatts)
	}
	if r.HWAvailYear < minHWYear || r.HWAvailYear > maxHWYear {
		return fail("hardware availability year %d outside [%d, %d]", r.HWAvailYear, minHWYear, maxHWYear)
	}
	if r.PublishedYear < minPubYear || r.PublishedYear > maxPubYear {
		return fail("published year %d outside [%d, %d]", r.PublishedYear, minPubYear, maxPubYear)
	}
	if q := r.PublishedQuarter; q < 1 || q > 4 {
		return fail("published quarter %d outside [1, 4]", q)
	}
	if q := r.HWAvailQuarter; q < 1 || q > 4 {
		return fail("hardware availability quarter %d outside [1, 4]", q)
	}
	if r.Nodes < 1 {
		return fail("node count %d", r.Nodes)
	}
	if r.Chips < 1 || r.Chips%r.Nodes != 0 {
		return fail("chip count %d not a positive multiple of %d nodes", r.Chips, r.Nodes)
	}
	if r.CoresPerChip < 1 {
		return fail("cores per chip %d", r.CoresPerChip)
	}
	if r.MemoryGB <= 0 {
		return fail("memory %v GB", r.MemoryGB)
	}
	if _, err := r.Curve(); err != nil {
		return fail("curve: %v", err)
	}
	return nil
}

// IsCompliant reports whether the result passes Validate.
func IsCompliant(r *Result) bool { return Validate(r) == nil }
