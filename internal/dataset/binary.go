package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/microarch"
)

// Binary corpus codec: a compact, streaming, length-prefixed encoding
// for fleet-scale corpora where CSV/JSON parse time dominates. The
// layout is
//
//	magic "EPFB" | uvarint version
//	repeated records: uvarint payload length | payload
//
// terminated by EOF. Each payload encodes the Result fields in struct
// order: strings as uvarint-length-prefixed bytes, integers as zigzag
// varints, floats as 8-byte little-endian IEEE 754 bits (so every value
// round-trips bit-for-bit, like the codecs' shortest-representation
// decimal forms), and Levels as a uvarint count followed by the four
// floats of each level. Unlike CSV — which flattens to exactly ten
// levels and re-derives the target-load grid — the binary form
// preserves variable-length level lists exactly.

var binaryMagic = [4]byte{'E', 'P', 'F', 'B'}

const (
	binaryVersion = 1
	// maxBinaryRecord bounds one record's payload so a corrupt length
	// prefix fails cleanly instead of attempting a huge allocation.
	maxBinaryRecord = 1 << 20
)

// BinaryWriter streams results into the binary corpus encoding.
type BinaryWriter struct {
	w   *bufio.Writer
	buf []byte
}

// NewBinaryWriter writes the format header and returns a writer.
// Call Flush after the last record.
func NewBinaryWriter(w io.Writer) (*BinaryWriter, error) {
	bw := &BinaryWriter{w: bufio.NewWriter(w)}
	if _, err := bw.w.Write(binaryMagic[:]); err != nil {
		return nil, fmt.Errorf("dataset: write binary header: %w", err)
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], binaryVersion)
	if _, err := bw.w.Write(hdr[:n]); err != nil {
		return nil, fmt.Errorf("dataset: write binary header: %w", err)
	}
	return bw, nil
}

// Write appends one result record.
func (bw *BinaryWriter) Write(r *Result) error {
	bw.buf = appendBinaryResult(bw.buf[:0], r)
	var pfx [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(pfx[:], uint64(len(bw.buf)))
	if _, err := bw.w.Write(pfx[:n]); err != nil {
		return fmt.Errorf("dataset: write binary record %s: %w", r.ID, err)
	}
	if _, err := bw.w.Write(bw.buf); err != nil {
		return fmt.Errorf("dataset: write binary record %s: %w", r.ID, err)
	}
	return nil
}

// Flush drains the writer's buffer to the underlying stream.
func (bw *BinaryWriter) Flush() error {
	if err := bw.w.Flush(); err != nil {
		return fmt.Errorf("dataset: flush binary: %w", err)
	}
	return nil
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

func appendVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutVarint(tmp[:], v)]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, v float64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	return append(b, tmp[:]...)
}

func appendBinaryResult(b []byte, r *Result) []byte {
	b = appendString(b, r.ID)
	b = appendString(b, r.Vendor)
	b = appendString(b, r.System)
	b = appendVarint(b, int64(r.FormFactor))
	b = appendVarint(b, int64(r.PublishedYear))
	b = appendVarint(b, int64(r.PublishedQuarter))
	b = appendVarint(b, int64(r.HWAvailYear))
	b = appendVarint(b, int64(r.HWAvailQuarter))
	b = appendVarint(b, int64(r.Nodes))
	b = appendVarint(b, int64(r.Chips))
	b = appendVarint(b, int64(r.CoresPerChip))
	b = appendString(b, r.CPUModel)
	b = appendVarint(b, int64(r.Codename))
	b = appendFloat(b, r.NominalGHz)
	b = appendString(b, r.JVM)
	b = appendString(b, r.OS)
	b = appendFloat(b, r.MemoryGB)
	b = appendFloat(b, r.ActiveIdleWatts)
	b = appendUvarint(b, uint64(len(r.Levels)))
	for _, lv := range r.Levels {
		b = appendFloat(b, lv.TargetLoad)
		b = appendFloat(b, lv.ActualLoad)
		b = appendFloat(b, lv.OpsPerSec)
		b = appendFloat(b, lv.AvgPowerWatts)
	}
	return b
}

// BinaryReader streams results out of the binary corpus encoding.
type BinaryReader struct {
	r   *bufio.Reader
	buf []byte
}

// NewBinaryReader checks the format header and returns a record reader.
// It accepts only the v1 record layout; use ReadColumns (or ReadBinary)
// for streams that may be in the v2 columnar layout.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := &BinaryReader{r: bufio.NewReader(r)}
	version, err := readBinaryHeader(br.r)
	if err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("dataset: unsupported binary version %d (record reader wants %d; use ReadColumns)", version, binaryVersion)
	}
	return br, nil
}

// Read returns the next record, or io.EOF after the last one.
func (br *BinaryReader) Read() (*Result, error) {
	size, err := binary.ReadUvarint(br.r)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: read binary record length: %w", err)
	}
	if size > maxBinaryRecord {
		return nil, fmt.Errorf("dataset: binary record length %d exceeds limit %d", size, maxBinaryRecord)
	}
	if cap(br.buf) < int(size) {
		br.buf = make([]byte, size)
	}
	br.buf = br.buf[:size]
	if _, err := io.ReadFull(br.r, br.buf); err != nil {
		return nil, fmt.Errorf("dataset: read binary record: %w", err)
	}
	return decodeBinaryResult(br.buf)
}

type binaryDecoder struct {
	b   []byte
	err error
}

func (d *binaryDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("dataset: truncated binary varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *binaryDecoder) varint() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("dataset: truncated binary varint")
		return 0
	}
	d.b = d.b[n:]
	return int(v)
}

func (d *binaryDecoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.err = fmt.Errorf("dataset: truncated binary string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *binaryDecoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.err = fmt.Errorf("dataset: truncated binary float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func decodeBinaryResult(payload []byte) (*Result, error) {
	d := &binaryDecoder{b: payload}
	var r Result
	r.ID = d.string()
	r.Vendor = d.string()
	r.System = d.string()
	r.FormFactor = FormFactor(d.varint())
	r.PublishedYear = d.varint()
	r.PublishedQuarter = d.varint()
	r.HWAvailYear = d.varint()
	r.HWAvailQuarter = d.varint()
	r.Nodes = d.varint()
	r.Chips = d.varint()
	r.CoresPerChip = d.varint()
	r.CPUModel = d.string()
	r.Codename = microarch.Codename(d.varint())
	r.NominalGHz = d.float()
	r.JVM = d.string()
	r.OS = d.string()
	r.MemoryGB = d.float()
	r.ActiveIdleWatts = d.float()
	nLevels := d.uvarint()
	if d.err == nil && nLevels > uint64(len(d.b))/32 {
		return nil, fmt.Errorf("dataset: binary level count %d exceeds record payload", nLevels)
	}
	if d.err == nil && nLevels > 0 {
		r.Levels = make([]LoadLevel, nLevels)
		for i := range r.Levels {
			r.Levels[i] = LoadLevel{
				TargetLoad:    d.float(),
				ActualLoad:    d.float(),
				OpsPerSec:     d.float(),
				AvgPowerWatts: d.float(),
			}
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("dataset: decode binary record %q: %w", r.ID, d.err)
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("dataset: binary record %q has %d trailing bytes", r.ID, len(d.b))
	}
	return &r, nil
}

// WriteBinary writes the results in the binary corpus encoding.
func WriteBinary(w io.Writer, results []*Result) error {
	bw, err := NewBinaryWriter(w)
	if err != nil {
		return err
	}
	for _, r := range results {
		if err := bw.Write(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses results written by WriteBinary or WriteColumns:
// v1 streams record views directly, v2 decodes columns and materializes
// the adapter views.
func ReadBinary(r io.Reader) ([]*Result, error) {
	buf := bufio.NewReader(r)
	version, err := readBinaryHeader(buf)
	if err != nil {
		return nil, err
	}
	switch version {
	case binaryVersion:
		br := &BinaryReader{r: buf}
		var out []*Result
		for {
			res, err := br.Read()
			if err == io.EOF {
				return out, nil
			}
			if err != nil {
				return nil, err
			}
			out = append(out, res)
		}
	case binaryVersionColumnar:
		cs, err := readColumnsV2(buf)
		if err != nil {
			return nil, err
		}
		return cs.Materialize(), nil
	default:
		return nil, fmt.Errorf("dataset: unsupported binary version %d", version)
	}
}
