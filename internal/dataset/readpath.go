package dataset

import (
	"bufio"
	"bytes"
	"os"
	"strings"
)

// ReadPath loads a dataset file into a repository, dispatching on
// content and extension. Files that begin with the EPFB magic load
// through the columnar reader (record v1 or sectioned v2) straight
// into a column-backed repository — result views materialize lazily.
// Otherwise a ".json" suffix selects the JSON codec and anything else
// the CSV codec, the convention the CLIs shared individually before
// this helper existed.
func ReadPath(path string) (*Repository, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	head, _ := br.Peek(len(binaryMagic))
	if bytes.Equal(head, binaryMagic[:]) {
		// Binary corpora are decoded from memory: the v2 fast path
		// pre-sizes every column from the chunk framing and slices
		// section payloads in place instead of streaming through a
		// scratch buffer. Pre-sizing the read buffer from the file
		// length avoids growth copies on the way in.
		size := 0
		if st, err := f.Stat(); err == nil && st.Size() > 0 {
			size = int(st.Size())
		}
		buf := bytes.NewBuffer(make([]byte, 0, size+1))
		if _, err := buf.ReadFrom(br); err != nil {
			return nil, err
		}
		cs, err := ReadColumnsBytes(buf.Bytes())
		if err != nil {
			return nil, err
		}
		return NewColumnRepository(cs), nil
	}
	var results []*Result
	if strings.HasSuffix(path, ".json") {
		results, err = ReadJSON(br)
	} else {
		results, err = ReadCSV(br)
	}
	if err != nil {
		return nil, err
	}
	return NewRepository(results), nil
}
