package repro_test

import (
	"fmt"

	"repro"
)

// ExampleNewStandardCurve computes the paper's metrics for one measured
// server: Eq. 1 energy proportionality, idle fraction, and the
// peak-efficiency spot.
func ExampleNewStandardCurve() {
	// Ten load levels (10%..100%): average watts and ssj_ops.
	watts := []float64{60, 80, 100, 118, 134, 150, 166, 184, 210, 250}
	ops := []float64{1e5, 2e5, 3e5, 4e5, 5e5, 6e5, 7e5, 8e5, 9e5, 1e6}
	curve, err := repro.NewStandardCurve(45, watts, ops)
	if err != nil {
		panic(err)
	}
	peak, spots := curve.PeakEE()
	fmt.Printf("EP = %.3f\n", curve.EP())
	fmt.Printf("idle = %.0f%% of full-load power\n", 100*curve.IdleFraction())
	fmt.Printf("peak efficiency %.0f ops/W at %.0f%% load\n", peak, 100*spots[0])
	// Output:
	// EP = 0.920
	// idle = 18% of full-load power
	// peak efficiency 4348 ops/W at 80% load
}

// ExampleGenerateCorpus reproduces the paper's headline corpus shape.
func ExampleGenerateCorpus() {
	corpus, err := repro.GenerateCorpus(repro.SynthConfig{Seed: 1})
	if err != nil {
		panic(err)
	}
	valid := corpus.Valid()
	sorted := valid.SortByEP()
	fmt.Printf("valid results: %d\n", valid.Len())
	fmt.Printf("EP extremes: %.2f to %.2f\n", sorted[0].EP(), sorted[len(sorted)-1].EP())
	// Output:
	// valid results: 477
	// EP extremes: 0.18 to 1.05
}

// ExampleFitIdleRegression recovers the paper's Eq. 2 from the corpus.
func ExampleFitIdleRegression() {
	corpus, err := repro.GenerateCorpus(repro.SynthConfig{Seed: 1})
	if err != nil {
		panic(err)
	}
	reg, err := repro.FitIdleRegression(corpus.Valid())
	if err != nil {
		panic(err)
	}
	// EP rises exponentially as idle power falls (paper: 1.2969,
	// ≈ −2.06, R² 0.892).
	fmt.Printf("EP = %.2f·e^(%.1f·idle), R² = %.2f\n", reg.Fit.A, reg.Fit.B, reg.Fit.R2)
	// Output:
	// EP = 1.24·e^(-1.9·idle), R² = 0.89
}

// ExampleSweep runs the §V.B frequency experiment on the paper's
// server #2: lower DVFS frequencies always lose efficiency.
func ExampleSweep() {
	srv := repro.TableIIServers()[1] // Sugon I620-G10
	pts, err := repro.Sweep(srv,
		[]repro.MemoryConfig{{TotalGB: 16, DIMMSizeGB: 4}},
		[]repro.Governor{repro.PowerSave(), repro.Performance()}, 7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("1.2 GHz beats 1.8 GHz on efficiency: %v\n", pts[0].OverallEE > pts[1].OverallEE)
	// Output:
	// 1.2 GHz beats 1.8 GHz on efficiency: false
}
