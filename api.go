package repro

import (
	"io"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fleetsim"
	"repro/internal/metrics"
	"repro/internal/optimize"
	"repro/internal/par"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/workload"
)

// Metric kernel (internal/core).
type (
	// Curve is a SPECpower-style power/performance curve over graduated
	// utilization levels.
	Curve = core.Curve
	// CurvePoint is one measurement interval of a curve.
	CurvePoint = core.Point
	// Interval is a closed utilization range.
	Interval = core.Interval
)

// NewCurve validates and builds a curve from measurement points.
func NewCurve(points []CurvePoint) (*Curve, error) { return core.NewCurve(points) }

// NewStandardCurve builds a curve on the standard SPECpower grid from
// an idle power reading and ten (power, ops) pairs ordered 10%..100%.
func NewStandardCurve(idleWatts float64, watts, ops []float64) (*Curve, error) {
	return core.NewStandardCurve(idleWatts, watts, ops)
}

// StandardUtilizations are the eleven SPECpower target loads.
func StandardUtilizations() []float64 {
	return append([]float64(nil), core.StandardUtilizations...)
}

// Dataset model (internal/dataset).
type (
	// Result is one SPECpower submission.
	Result = dataset.Result
	// LoadLevel is one graduated measurement interval of a result.
	LoadLevel = dataset.LoadLevel
	// Repository is a queryable result collection.
	Repository = dataset.Repository
	// FormFactor is the disclosed chassis type.
	FormFactor = dataset.FormFactor
)

// NewRepository wraps results in a repository.
//
// Repositories memoize aggressively: every Result caches its validated
// curve and derived metrics (EP, overall EE, peak EE, idle fraction,
// dynamic range) on first access, and the repository additionally keeps
// index-aligned metric columns that EPs, OverallEEs, SortByEP, and the
// envelope/correlation analyses read directly. Caches build themselves
// lazily and in parallel; call PrecomputeMetrics to pay the cold cost up
// front. Results must not be mutated after construction — Clone a
// result to obtain an independently mutable copy with a fresh cache.
func NewRepository(results []*Result) *Repository { return dataset.NewRepository(results) }

// PrecomputeMetrics eagerly builds rp's cached metric columns (and each
// result's memoized metric bundle) across all CPUs, so subsequent
// analyses run entirely on warm caches. Optional: every accessor builds
// the caches on first use anyway.
func PrecomputeMetrics(rp *Repository) { rp.Precompute() }

// Validate checks one result against the SPEC compliance rules.
func Validate(r *Result) error { return dataset.Validate(r) }

// ReadCSV parses results from the flat CSV schema.
func ReadCSV(r io.Reader) ([]*Result, error) { return dataset.ReadCSV(r) }

// WriteCSV writes results as CSV with a header row.
func WriteCSV(w io.Writer, rs []*Result) error { return dataset.WriteCSV(w, rs) }

// ReadJSON parses a JSON array of results.
func ReadJSON(r io.Reader) ([]*Result, error) { return dataset.ReadJSON(r) }

// WriteJSON writes results as an indented JSON array.
func WriteJSON(w io.Writer, rs []*Result) error { return dataset.WriteJSON(w, rs) }

// ReadBinary parses results from the compact binary corpus encoding —
// the fleet-scale format that round-trips 100k-server corpora in
// milliseconds where CSV/JSON parse in seconds. Both the record-major
// v1 layout and the sectioned columnar v2 layout load transparently.
func ReadBinary(r io.Reader) ([]*Result, error) { return dataset.ReadBinary(r) }

// WriteBinary writes results in the compact binary corpus encoding
// (record-major v1). Every float round-trips bit-for-bit.
func WriteBinary(w io.Writer, rs []*Result) error { return dataset.WriteBinary(w, rs) }

// Columnar corpus core (internal/dataset).
type (
	// ColumnStore is the struct-of-arrays corpus representation: every
	// metric and disclosure field lives in an index-aligned column, the
	// graduated load levels in flattened arrays behind an offsets table.
	// Repositories are backed by one; analyses iterate its columns
	// directly and *Result views materialize lazily per row.
	ColumnStore = dataset.ColumnStore
	// ColumnWriter streams column stores to the sectioned columnar EPFB
	// v2 encoding chunk by chunk.
	ColumnWriter = dataset.ColumnWriter
)

// BuildColumns builds a column store (raw and derived metric columns)
// from result structs.
func BuildColumns(rs []*Result) *ColumnStore { return dataset.BuildColumns(rs) }

// NewColumnRepository wraps a column store in a repository without
// materializing result views; rows materialize lazily on access.
func NewColumnRepository(cs *ColumnStore) *Repository { return dataset.NewColumnRepository(cs) }

// ReadColumns parses a binary corpus (EPFB v1 or v2) directly into a
// column store; no result structs are built.
func ReadColumns(r io.Reader) (*ColumnStore, error) { return dataset.ReadColumns(r) }

// ReadColumnsBytes parses an in-memory binary corpus into a column
// store. For v2 input it is the fastest load path: columns are sized
// up front from the chunk framing and section payloads decode in
// place, with no streaming copy. The store does not retain data.
func ReadColumnsBytes(data []byte) (*ColumnStore, error) { return dataset.ReadColumnsBytes(data) }

// WriteColumns writes a column store in the sectioned columnar EPFB v2
// encoding. Every float round-trips bit-for-bit, and v2 files load
// several times faster than the record-major v1 layout.
func WriteColumns(w io.Writer, cs *ColumnStore) error { return dataset.WriteColumns(w, cs) }

// NewColumnWriter starts a streaming EPFB v2 encode to w; call
// WriteChunk per shard and Flush at the end.
func NewColumnWriter(w io.Writer) (*ColumnWriter, error) { return dataset.NewColumnWriter(w) }

// ReadDatasetPath loads a corpus file into a repository, sniffing the
// format: EPFB binaries (v1 or v2) load columnar, ".json" selects the
// JSON codec, anything else the CSV codec.
func ReadDatasetPath(path string) (*Repository, error) { return dataset.ReadPath(path) }

// Synthetic corpus (internal/synth).
type (
	// SynthConfig seeds corpus generation.
	SynthConfig = synth.Config
	// FleetConfig sizes and seeds fleet-scale corpus generation.
	FleetConfig = synth.FleetConfig
)

// GenerateCorpus produces the full 517-submission synthetic corpus
// calibrated to the paper's statistics.
func GenerateCorpus(cfg SynthConfig) (*Repository, error) { return synth.NewRepository(cfg) }

// GenerateValidResults produces only the 477 compliant results.
func GenerateValidResults(cfg SynthConfig) ([]*Result, error) { return synth.GenerateValid(cfg) }

// GenerateFleet produces a fleet of cfg.Servers synthetic results
// sampled from the same calibrated plan tables as the default corpus.
// Generation shards across CPUs on fixed-size RNG streams, so the
// output depends only on the seed and fleet size — never on the worker
// count — and smaller fleets are strict prefixes of larger ones.
func GenerateFleet(cfg FleetConfig) ([]*Result, error) { return synth.GenerateFleet(cfg) }

// GenerateFleetStore produces the same fleet as GenerateFleet directly
// as a column store — no result structs are held; pair with
// NewColumnRepository for fleet-scale analyses.
func GenerateFleetStore(cfg FleetConfig) (*ColumnStore, error) {
	return synth.GenerateFleetStore(cfg)
}

// GenerateFleetShards streams the fleet shard by shard, in order, to
// fn — the bounded-memory path for writing million-server corpora to
// disk (each shard is ~1k rows; pair with a ColumnWriter).
func GenerateFleetShards(cfg FleetConfig, fn func(shard int, cs *ColumnStore) error) error {
	return synth.GenerateFleetShards(cfg, fn)
}

// FleetProfiles derives placement profiles from fleet results in
// parallel, ready for ComposeCluster and the placement planners.
func FleetProfiles(results []*Result) ([]*PlacementProfile, error) {
	return par.MapErr(len(results), func(i int) (*PlacementProfile, error) {
		c, err := results[i].Curve()
		if err != nil {
			return nil, err
		}
		return placement.NewProfile(results[i].ID, c)
	})
}

// Analyses (internal/analysis).
type (
	YearStats         = analysis.YearStats
	FamilyCount       = analysis.FamilyCount
	CodenameStats     = analysis.CodenameStats
	GroupStats        = analysis.GroupStats
	Envelope          = analysis.Envelope
	Representative    = analysis.Representative
	MPCBucket         = analysis.MPCBucket
	Correlations      = analysis.Correlations
	IdleRegression    = analysis.IdleRegression
	AsyncStats        = analysis.AsyncStats
	TwoChipComparison = analysis.TwoChipComparison
)

// YearlyTrend computes the per-year EP/EE statistics (Fig. 2-4).
func YearlyTrend(rp *Repository) ([]YearStats, error) { return analysis.YearlyTrend(rp) }

// ByFamily groups the corpus by microarchitecture family (Fig. 6).
func ByFamily(rp *Repository) []FamilyCount { return analysis.ByFamily(rp) }

// ByCodename groups the corpus by processor codename (Fig. 7).
func ByCodename(rp *Repository) []CodenameStats { return analysis.ByCodename(rp) }

// PowerEnvelope computes the pencil-head chart band (Fig. 9).
func PowerEnvelope(rp *Repository) Envelope { return analysis.PowerEnvelope(rp) }

// EEEnvelope computes the almond chart band (Fig. 11).
func EEEnvelope(rp *Repository) Envelope { return analysis.EEEnvelope(rp) }

// ByNodes computes the node-count economies-of-scale grouping (Fig. 13).
func ByNodes(rp *Repository, minCount int) []GroupStats { return analysis.ByNodes(rp, minCount) }

// ByChips computes the single-node chip-count grouping (Fig. 14).
func ByChips(rp *Repository, minCount int) []GroupStats { return analysis.ByChips(rp, minCount) }

// MemoryPerCore buckets servers by GB/core (Table I / Fig. 17).
func MemoryPerCore(rp *Repository, minCount int) []MPCBucket {
	return analysis.MemoryPerCore(rp, minCount)
}

// ComputeCorrelations quantifies the paper's metric relationships.
func ComputeCorrelations(rp *Repository) (Correlations, error) {
	return analysis.ComputeCorrelations(rp)
}

// FitIdleRegression fits the paper's Eq. 2 over the repository.
func FitIdleRegression(rp *Repository) (IdleRegression, error) {
	return analysis.FitIdleRegression(rp)
}

// Asynchronization computes the §IV.B top-decile statistics.
func Asynchronization(rp *Repository) AsyncStats { return analysis.Asynchronization(rp) }

// Server power models and benchmark harness (internal/power,
// internal/bench).
type (
	ServerConfig = power.ServerConfig
	CPUSpec      = power.CPUSpec
	Governor     = power.Governor
	BenchConfig  = bench.Config
	BenchResult  = bench.Result
	SweepPoint   = bench.SweepPoint
	MemoryConfig = bench.MemoryConfig
)

// TableIIServers returns the paper's four modeled rack servers.
func TableIIServers() []ServerConfig { return power.TableIIServers() }

// Performance returns the governor pinned to the top P-state.
func Performance() Governor { return power.Performance() }

// OnDemand returns the governor that ramps to the top frequency while
// busy.
func OnDemand() Governor { return power.OnDemand() }

// PowerSave returns the governor pinned to the lowest P-state.
func PowerSave() Governor { return power.PowerSave() }

// UserSpace returns a governor pinned to the given frequency.
func UserSpace(freqGHz float64) Governor { return power.UserSpace(freqGHz) }

// NewBenchRunner builds a SPECpower-style benchmark runner over a
// modeled server.
func NewBenchRunner(cfg BenchConfig) (*bench.Runner, error) { return bench.NewRunner(cfg) }

// Sweep runs the benchmark across memory configurations × governors
// (the Fig. 18-21 experiments).
func Sweep(srv ServerConfig, mems []MemoryConfig, govs []Governor, seed int64) ([]SweepPoint, error) {
	return bench.Sweep(srv, mems, govs, seed)
}

// Placement engine (internal/placement).
type (
	PlacementProfile = placement.Profile
	PlacementPlan    = placement.Plan
	PlacementOptions = placement.Options
	Cluster          = placement.Cluster
)

// NewPlacementProfile derives a placement profile from a measured
// curve.
func NewPlacementProfile(id string, curve *Curve) (*PlacementProfile, error) {
	return placement.NewProfile(id, curve)
}

// BuildClusters groups profiles into EP-banded logical clusters with
// overlapping optimal working regions (§V.C).
func BuildClusters(profiles []*PlacementProfile, epBandWidth float64) ([]Cluster, error) {
	return placement.BuildClusters(profiles, epBandWidth)
}

// PlaceProportional is the §V.C strategy: engage servers at their
// optimal utilization in descending optimal-efficiency order.
func PlaceProportional(ps []*PlacementProfile, demandOps float64, opts PlacementOptions) (PlacementPlan, error) {
	return placement.PlaceProportional(ps, demandOps, opts)
}

// PackToFull is the conventional baseline: fill each server to 100%
// before engaging the next.
func PackToFull(ps []*PlacementProfile, demandOps float64, opts PlacementOptions) (PlacementPlan, error) {
	return placement.PackToFull(ps, demandOps, opts)
}

// SpreadEvenly is the load-balancer baseline: every server at equal
// utilization.
func SpreadEvenly(ps []*PlacementProfile, demandOps float64, opts PlacementOptions) (PlacementPlan, error) {
	return placement.SpreadEvenly(ps, demandOps, opts)
}

// MaxThroughputUnderCap maximizes fleet throughput under a power
// budget.
func MaxThroughputUnderCap(ps []*PlacementProfile, capWatts float64, opts PlacementOptions) (PlacementPlan, error) {
	return placement.MaxThroughputUnderCap(ps, capWatts, opts)
}

// Reporting (internal/report).
type ReportOptions = report.Options

// FullReport regenerates the paper's complete evaluation section.
func FullReport(rp *Repository, opts ReportOptions) (string, error) { return report.Full(rp, opts) }

// FigureIDs lists the selectors of the figure registry — every figure
// and table of the paper addressable by its number ("1".."17", "t1",
// "t2") plus the extension analyses ("e1", "e3".."e7").
func FigureIDs() []string { return report.FigureIDs() }

// Figure renders one registered figure as its terminal-chart form.
func Figure(rp *Repository, id string) (string, error) { return report.Figure(rp, id) }

// FigureSVG renders one registered figure as standalone SVG; figures
// without a chart form return an error wrapping report.ErrNoSVG.
func FigureSVG(rp *Repository, id string) (string, error) { return report.FigureSVG(rp, id) }

// Snapshot-cached HTTP serving (internal/serve).
type (
	// ServeConfig configures the snapshot-cached HTTP server.
	ServeConfig = serve.Config
	// ServeSnapshot is one immutable served corpus generation:
	// repository, validated subset, seed, report options, and the
	// byte-level response cache rendered from them.
	ServeSnapshot = serve.Snapshot
	// ServeKey addresses one keyed scenario in the server's
	// multi-corpus workspace: a synthesis seed, optionally with a
	// fleet size.
	ServeKey = serve.Key
)

// NewServer builds the HTTP server behind cmd/specserved: the report,
// every figure, the EP/EE/correlation metrics and the corpus listing,
// served from an immutable snapshot with coalesced renders, ETag
// revalidation and pre-compressed gzip variants. Plug
// srv.Handler() into http.ListenAndServe; srv.Reload atomically swaps
// in a new corpus seed without blocking readers.
func NewServer(cfg ServeConfig) (*serve.Server, error) { return serve.New(cfg) }

// OpenMetrics text exposition (internal/metrics).
type (
	// MetricsFamily is one metric family: name, help, type and samples.
	MetricsFamily = metrics.Family
	// MetricsSample is one labeled sample within a family.
	MetricsSample = metrics.Sample
	// MetricsLabel is one label pair on a sample.
	MetricsLabel = metrics.Label
	// MetricsType distinguishes gauge from counter families.
	MetricsType = metrics.Type
)

// MetricsContentType is the Content-Type of the OpenMetrics 1.0 text
// exposition served on /metrics.
const MetricsContentType = metrics.ContentType

// WriteOpenMetrics renders families as canonical OpenMetrics 1.0 text:
// families, samples and labels sorted, metadata before samples, `# EOF`
// terminated. Output is byte-deterministic for a given sample set.
func WriteOpenMetrics(w io.Writer, fams []MetricsFamily) error { return metrics.Write(w, fams) }

// ParseOpenMetrics parses — and strictly lints — an OpenMetrics 1.0
// text exposition, returning the families in document order.
func ParseOpenMetrics(data []byte) ([]MetricsFamily, error) { return metrics.Parse(data) }

// Cluster-wide proportionality (internal/cluster).
type (
	ClusterPolicy       = cluster.Policy
	ClusterAggregate    = cluster.Aggregate
	ClusterComparison   = cluster.Comparison
	ClusterScalingPoint = cluster.ScalingPoint
)

// Cluster load-distribution policies.
const (
	PolicySpread        = cluster.PolicySpread
	PolicyPack          = cluster.PolicyPack
	PolicyPackPowerOff  = cluster.PolicyPackPowerOff
	PolicyOptimalRegion = cluster.PolicyOptimalRegion
)

// ComposeCluster builds the aggregate power-utilization curve of a
// server group under a load-distribution policy.
func ComposeCluster(members []*PlacementProfile, policy ClusterPolicy) (ClusterAggregate, error) {
	return cluster.Compose(members, policy)
}

// CompareClusterPolicies evaluates cluster-wide EP under every policy.
func CompareClusterPolicies(members []*PlacementProfile) (ClusterComparison, error) {
	return cluster.Compare(members)
}

// ClusterScalingStudy replicates one server into clusters of the given
// sizes and reports cluster EP — the computational counterpart of the
// paper's Fig. 13.
func ClusterScalingStudy(prototype *PlacementProfile, sizes []int, policy ClusterPolicy) ([]ClusterScalingPoint, error) {
	return cluster.ScalingStudy(prototype, sizes, policy)
}

// Demand traces and energy replay (internal/trace).
type (
	Trace         = trace.Trace
	DiurnalConfig = trace.DiurnalConfig
	BurstyConfig  = trace.BurstyConfig
	TraceStrategy = trace.Strategy
	ReplayResult  = trace.ReplayResult
)

// Replay strategies.
const (
	StrategyProportional = trace.StrategyProportional
	StrategyPackToFull   = trace.StrategyPackToFull
	StrategySpreadEvenly = trace.StrategySpreadEvenly
)

// DiurnalTrace synthesizes a day/night demand pattern.
func DiurnalTrace(cfg DiurnalConfig) (*Trace, error) { return trace.Diurnal(cfg) }

// BurstyTrace synthesizes a flash-crowd demand pattern: Poisson burst
// arrivals with exponential decay over a flat base load.
func BurstyTrace(cfg BurstyConfig) (*Trace, error) { return trace.Bursty(cfg) }

// ReadTraceCSV parses a demand trace from CSV (one demand column, or
// time,demand pairs; optional header) at the given sampling period.
func ReadTraceCSV(r io.Reader, stepSeconds float64) (*Trace, error) {
	return trace.ReadCSV(r, stepSeconds)
}

// ReplayTrace accounts a fleet's energy over a trace under one
// placement strategy.
func ReplayTrace(tr *Trace, fleet []*PlacementProfile, s TraceStrategy, opts PlacementOptions) (ReplayResult, error) {
	return trace.Replay(tr, fleet, s, opts)
}

// CompareTraceStrategies replays the trace under every strategy.
func CompareTraceStrategies(tr *Trace, fleet []*PlacementProfile, opts PlacementOptions) ([]ReplayResult, error) {
	return trace.CompareStrategies(tr, fleet, opts)
}

// Streaming fleet simulation (internal/fleetsim): a time-stepped
// replay of a demand trace against a composed fleet with online
// power management (on/off transitions, hysteresis) and incremental
// per-step cluster state — O(log n) per step instead of an O(n)
// recompose.
type (
	FleetSimConfig  = fleetsim.Config
	FleetSimPower   = fleetsim.PowerConfig
	FleetSimLatency = fleetsim.LatencyConfig
	FleetSimStep    = fleetsim.StepStats
	FleetSimResult  = fleetsim.Result
	FleetSimStepper = fleetsim.Stepper
)

// SimulateFleet replays cfg.Trace against cfg.Members. Trace segments
// shard across CPUs and stitch deterministically: the result (and
// every StepStats emitted through cfg.Sink, in step order) is
// byte-identical at any worker count.
func SimulateFleet(cfg FleetSimConfig) (FleetSimResult, error) { return fleetsim.Run(cfg) }

// NewFleetStepper builds the incremental simulator core directly for
// callers that want to drive steps themselves (live dashboards, custom
// accounting); feed it trace demands in order via Step.
func NewFleetStepper(cfg FleetSimConfig) (*FleetSimStepper, error) { return fleetsim.NewStepper(cfg) }

// Composition-space what-if optimization (internal/optimize): search
// over fleet compositions — counts per server model crossed with pack
// policy — minimizing trace-weighted energy, cost, or carbon. Grouped
// evaluators, a compressed demand histogram, and an admissible
// lower-bound pruner make tens of thousands of candidates per second;
// the top-k shortlist is re-ranked by exact fleet simulation. Results
// are byte-identical at any worker count.
type (
	OptimizeConfig    = optimize.Config
	OptimizeObjective = optimize.Objective
	OptimizeMetric    = optimize.Metric
	OptimizeCandidate = optimize.Candidate
	OptimizeResult    = optimize.Result
	// FleetGroup is a homogeneous run of identical servers — the
	// multiset input shared by NewGroupedEvaluator, FleetSimConfig's
	// Groups field, and the optimizer's candidates.
	FleetGroup = placement.Group
)

// Optimization metrics.
const (
	MetricEnergy = optimize.MetricEnergy
	MetricCost   = optimize.MetricCost
	MetricCarbon = optimize.MetricCarbon
)

// OptimizeComposition searches fleet-composition space for the
// candidate minimizing cfg.Objective over cfg.Trace.
func OptimizeComposition(cfg OptimizeConfig) (OptimizeResult, error) {
	return optimize.OptimizeComposition(cfg)
}

// ParseOptimizeMetric resolves a metric name (energy, cost, carbon).
func ParseOptimizeMetric(s string) (OptimizeMetric, error) { return optimize.ParseMetric(s) }

// Transaction-level workload simulation (internal/workload).
type (
	WorkloadConfig  = workload.Config
	WorkloadMetrics = workload.Metrics
	TxType          = workload.TxType
	TxMix           = workload.Mix
)

// Benchmark fidelity levels.
const (
	FidelityFast        = bench.FidelityFast
	FidelityTransaction = bench.FidelityTransaction
)

// SimulateWorkload runs one transaction-level measurement interval.
func SimulateWorkload(cfg WorkloadConfig) (WorkloadMetrics, error) { return workload.Simulate(cfg) }

// DefaultTxMix returns the published ssj_2008 transaction mix.
func DefaultTxMix() TxMix { return workload.DefaultMix() }

// Extension analyses.
type (
	GapRow     = analysis.GapRow
	GapSummary = analysis.GapSummary
	EraRate    = analysis.EraRate
	Breakdown  = power.Breakdown
	Component  = power.Component
)

// ProportionalityGapByYear quantifies the low-utilization gap trend
// (extension E1).
func ProportionalityGapByYear(rp *Repository) ([]GapRow, error) {
	return analysis.ProportionalityGapByYear(rp)
}

// ImprovementRates fits robust per-era EP/EE improvement rates
// (extension E4).
func ImprovementRates(rp *Repository, eras [][2]int) ([]EraRate, error) {
	return analysis.ImprovementRates(rp, eras)
}

// Disclosure renders one result in the style of a published SPECpower
// disclosure.
func Disclosure(r *Result) (string, error) { return report.Disclosure(r) }

// Energy cost and carbon accounting (internal/trace).
type (
	Tariff = trace.Tariff
	Bill   = trace.Bill
)

// Time-varying rate signals and carbon-aware optimization
// (internal/trace, internal/optimize).
type (
	// IntensityProfile is a periodic time-varying rate signal: grid
	// carbon intensity (kgCO2/kWh) or electricity price (USD/kWh).
	// Attach one to FleetSimConfig for per-step billing or to
	// OptimizeObjective to price the composition search.
	IntensityProfile = trace.IntensityProfile
	// IntensityConfig parameterizes the synthetic intensity shapes.
	IntensityConfig = trace.IntensityConfig
	// TraceHist2D is the joint demand × rate histogram of
	// CompressTrace2D: trace-weighted cost/carbon under a time-varying
	// rate becomes a double sum over its cells.
	TraceHist2D = trace.Hist2D
	// OptimizeRegion is one candidate siting region — a tariff plus
	// optional time-varying profiles; the optimizer scores every
	// candidate at its cheapest region in a single pass.
	OptimizeRegion = optimize.Region
	// EmbodiedCarbon amortizes per-server manufacturing carbon over a
	// service lifetime into the carbon objective.
	EmbodiedCarbon = optimize.Embodied
)

// DiurnalIntensity synthesizes the sinusoidal day/night grid-intensity
// profile (dirtiest at the evening peak, cleanest in the small hours).
func DiurnalIntensity(cfg IntensityConfig) (*IntensityProfile, error) {
	return trace.DiurnalIntensity(cfg)
}

// DuckCurveIntensity synthesizes the solar duck curve: the diurnal
// evening peak plus a midday trough where solar displaces fossil
// generation.
func DuckCurveIntensity(cfg IntensityConfig) (*IntensityProfile, error) {
	return trace.DuckCurveIntensity(cfg)
}

// ReadIntensityCSV parses an intensity (or price) profile from CSV (one
// rate column, or time,rate pairs; optional header) at the given
// sampling period.
func ReadIntensityCSV(r io.Reader, stepSeconds float64) (*IntensityProfile, error) {
	return trace.ReadIntensityCSV(r, stepSeconds)
}

// CompressTrace2D folds a demand trace jointly with one or more aligned
// rate signals (see IntensityProfile.Align) into the demand × rate
// histogram the carbon-aware optimizer scores against. With a constant
// rate signal the demand marginals are bit-identical to the 1-D
// compression.
func CompressTrace2D(tr *Trace, bins, rateBins int, rateSets ...[]float64) (*TraceHist2D, error) {
	return tr.Compress2D(bins, rateBins, rateSets...)
}

// DefaultEmbodiedCarbon returns the reference per-server embodied model
// (1300 kgCO2e amortized over a 4-year service life).
func DefaultEmbodiedCarbon() EmbodiedCarbon { return optimize.DefaultEmbodied() }

// DefaultTariff returns a typical 2016 US datacenter tariff.
func DefaultTariff() Tariff { return trace.DefaultTariff() }

// EnergyCost converts a replay result into an electricity bill and
// carbon footprint.
func EnergyCost(res ReplayResult, t Tariff) (Bill, error) { return trace.Cost(res, t) }

// AnnualizedBill scales a bill measured over traceDays to a 365-day
// year.
func AnnualizedBill(b Bill, traceDays float64) (Bill, error) {
	return trace.AnnualizedBill(b, traceDays)
}

// FitServer builds a component-level power model approximating a
// measured single-node result, enabling what-if simulation (different
// memory or frequencies) on any corpus server.
func FitServer(r *Result) (ServerConfig, error) { return power.FitServer(r) }

// Projection is the forward extrapolation of the corpus trends.
type Projection = analysis.Projection

// ProjectTrends extrapolates EP/EE past 2016 from the post-dip era
// rates and the Eq. 2 fit (extension E6).
func ProjectTrends(rp *Repository, targetYear int) (Projection, error) {
	return analysis.ProjectTrends(rp, targetYear)
}

// CalibrationCheck verifies a corpus against the paper's headline
// statistics (the contract `specgen -verify` prints).
type CalibrationCheckRow = synth.Check

// VerifyCalibration measures rp against every paper target.
func VerifyCalibration(rp *Repository) ([]CalibrationCheckRow, error) {
	return synth.CalibrationCheck(rp)
}

// The paper-invariant verification engine (cmd/specverify drives it;
// internal/verify houses the registry).
type (
	// VerifyReport is the outcome of one invariant run: per-check
	// findings plus pass/fail tallies.
	VerifyReport = verify.Report
	// VerifyFinding is one invariant's measured outcome.
	VerifyFinding = verify.Finding
	// VerifyInvariant is one registered check (name, category, doc).
	VerifyInvariant = verify.Invariant
	// VerifyCategory selects structural, metric or differential checks.
	VerifyCategory = verify.Category
)

// Verify generates the calibrated synthetic corpus at seed and runs
// every registered paper invariant over it: structural counts, metric
// recomputations against the paper's published numbers, and
// differential cross-checks of caches, worker schedules and the
// serving layer.
func Verify(seed int64) (*VerifyReport, error) { return verify.Synthetic(seed) }

// VerifyCorpus runs the invariant registry over an already-loaded
// repository. Generation-dependent invariants are skipped.
func VerifyCorpus(rp *Repository, seed int64) *VerifyReport { return verify.Corpus(rp, seed) }

// VerifyInvariants lists the registered invariants without running
// them.
func VerifyInvariants() []VerifyInvariant { return verify.Registry() }

// KnightShift composes a primary server with a low-power companion that
// serves low loads — the related work's server-level heterogeneity
// (refs [17]/[40]) — and returns the combined power-utilization curve.
func KnightShift(primary, knight *PlacementProfile, primaryOff bool) (ClusterAggregate, error) {
	return cluster.KnightShift(primary, knight, primaryOff)
}

// MaxRateUnderSLA finds the highest sustainable arrival rate whose
// simulated p99 latency meets the SLA; divide by capacity to obtain a
// PlacementProfile.UtilizationCap for latency-critical servers.
func MaxRateUnderSLA(cfg WorkloadConfig, slaP99Seconds float64) (float64, error) {
	return workload.MaxRateUnderSLA(cfg, slaP99Seconds)
}
