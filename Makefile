# Standard targets for the reproduction repository.

GO ?= go

.PHONY: all check build vet test race bench report report-html verify serve selftest examples clean

all: check

# The default gate: compile, vet, unit tests, and the race detector
# over every package (the memo/column caches are lock-free on the read
# path, so the race run is part of the standard check).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure; prints each regenerated series once.
bench:
	$(GO) test -bench=. -benchmem -count=1

# The full evaluation section as text / standalone HTML.
report:
	$(GO) run ./cmd/specreport

report-html:
	$(GO) run ./cmd/specreport -format html -out report.html

# Check the synthetic corpus against every paper target.
verify:
	$(GO) run ./cmd/specgen -verify -q

# Serve the report/figures/metrics over HTTP from the snapshot cache.
serve:
	$(GO) run ./cmd/specserved

# End-to-end API smoke check + load benchmark over a loopback listener.
selftest:
	$(GO) run ./cmd/specserved -selftest -no-sweeps

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/placement
	$(GO) run ./examples/hwconfig
	$(GO) run ./examples/fleet
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/whatif

clean:
	rm -f report.html test_output.txt bench_output.txt
