# Standard targets for the reproduction repository.

GO ?= go

.PHONY: all build vet test bench report report-html verify examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One benchmark per paper table/figure; prints each regenerated series once.
bench:
	$(GO) test -bench=. -benchmem

# The full evaluation section as text / standalone HTML.
report:
	$(GO) run ./cmd/specreport

report-html:
	$(GO) run ./cmd/specreport -format html -out report.html

# Check the synthetic corpus against every paper target.
verify:
	$(GO) run ./cmd/specgen -verify -q

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/placement
	$(GO) run ./examples/hwconfig
	$(GO) run ./examples/fleet
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/whatif

clean:
	rm -f report.html test_output.txt bench_output.txt
