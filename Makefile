# Standard targets for the reproduction repository.

GO ?= go

.PHONY: all check build vet test race bench fleetbench colbench simbench optbench carbonbench servebench report report-html verify calibrate fuzz serve selftest examples clean

all: check

# The default gate: compile, vet, unit tests, and the race detector
# over every package (the memo/column caches are lock-free on the read
# path, so the race run is part of the standard check).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure; prints each regenerated series once.
bench:
	$(GO) test -bench=. -benchmem -count=1

# Fleet-scale smoke: one iteration of each 10k/100k-server benchmark
# (composition, generation, codec) to catch fast-path regressions
# without the full benchtime cost.
fleetbench:
	$(GO) test -run '^$$' -bench 'BenchmarkFleet' -benchtime 1x .

# Columnar-core smoke: one iteration of the 10k/100k generate, load
# (EPFB v1 vs v2), and full-report benchmarks. The 1M variants are
# excluded to keep the CI run short; run them by hand with
# `go test -bench 'BenchmarkColumnar.*1M' -benchtime 2x .`
# when refreshing BENCH_columnar.json.
colbench:
	$(GO) test -run '^$$' -bench 'BenchmarkColumnar.*(10k|100k)$$' -benchtime 1x -timeout 20m .

# Fleet-simulator smoke: one iteration of the incremental/naive
# benchmarks, including the 100k-server × 1-minute-week perf target
# (BenchmarkFleetSimIncremental100kWeek must stay ≤ 5 s per op; see
# BENCH_fleetsim.json for the recorded before/after matrix).
simbench:
	$(GO) test -run '^$$' -bench 'BenchmarkFleetSim' -benchtime 1x ./internal/fleetsim

# Composition-optimizer smoke: one iteration of the grouped/pruned/
# naive benchmarks (BenchmarkOptimizeGrouped scores all 16,806
# candidates of a 5-model space against a 1-minute week and must stay
# <= 1 s single-threaded; see BENCH_optimize.json for the recorded
# before/after matrix).
optbench:
	$(GO) test -run '^$$' -bench 'BenchmarkOptimize' -benchtime 1x ./internal/optimize

# Carbon-aware-optimizer smoke: one iteration each of the static-rate
# baseline, the 2-D demand×intensity fold (all 16,806 candidates under
# a diurnal grid profile; must stay ≤ 2× the static time), and the
# per-candidate exact-replay reference (see BENCH_carbon.json).
carbonbench:
	$(GO) test -run '^$$' -bench 'BenchmarkCarbon' -benchtime 1x ./internal/optimize

# Serving-layer smoke: one iteration of the /metrics scrape and keyed
# workspace benchmarks (BenchmarkMetricsScrapeWarm must stay <= 1 ms
# per op warm; see BENCH_serve.json for the recorded matrix).
servebench:
	$(GO) test -run '^$$' -bench 'BenchmarkMetrics|BenchmarkKeyed' -benchtime 1x ./internal/serve

# The full evaluation section as text / standalone HTML.
report:
	$(GO) run ./cmd/specreport

report-html:
	$(GO) run ./cmd/specreport -format html -out report.html

# Run the paper-invariant verification engine: structural, metric and
# differential checks over the default corpus (exit non-zero on any
# failure). `make calibrate` is the older, looser calibration table.
verify:
	$(GO) run ./cmd/specverify -seed 1

# Check the synthetic corpus against every paper target (any-seed bands).
calibrate:
	$(GO) run ./cmd/specgen -verify -q

# Fuzz the EP metric kernel and the curve solvers for a short burst
# each (CI smoke; raise FUZZTIME locally for a real session).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzCurveEP -fuzztime $(FUZZTIME) ./internal/synth
	$(GO) test -run '^$$' -fuzz FuzzIdleForEP -fuzztime $(FUZZTIME) ./internal/synth

# Serve the report/figures/metrics over HTTP from the snapshot cache.
serve:
	$(GO) run ./cmd/specserved

# End-to-end API smoke check + load benchmark over a loopback listener.
selftest:
	$(GO) run ./cmd/specserved -selftest -no-sweeps

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/placement
	$(GO) run ./examples/hwconfig
	$(GO) run ./examples/fleet
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/whatif

clean:
	rm -f report.html test_output.txt bench_output.txt
