package repro_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro"
)

// TestFacadeEndToEnd drives the whole public API the way the README's
// quickstart does: corpus → metrics → analyses → hardware experiment →
// placement → traces, all through the root package.
func TestFacadeEndToEnd(t *testing.T) {
	corpus, err := repro.GenerateCorpus(repro.SynthConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	valid := corpus.Valid()
	if valid.Len() != 477 {
		t.Fatalf("valid = %d", valid.Len())
	}

	// Codec round trip through the facade.
	var buf bytes.Buffer
	if err := repro.WriteCSV(&buf, valid.All()); err != nil {
		t.Fatal(err)
	}
	back, err := repro.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 477 {
		t.Fatalf("round trip = %d", len(back))
	}
	for _, r := range back[:20] {
		if err := repro.Validate(r); err != nil {
			t.Fatalf("round-tripped result invalid: %v", err)
		}
	}

	// Metric kernel.
	best := valid.SortByEP()[valid.Len()-1]
	curve := best.MustCurve()
	if math.Abs(curve.EP()-1.05) > 1e-9 {
		t.Errorf("best EP = %v", curve.EP())
	}
	manual, err := repro.NewStandardCurve(50,
		[]float64{80, 110, 140, 170, 200, 230, 260, 290, 320, 350},
		[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	if manual.EP() <= 0 {
		t.Error("manual curve EP")
	}
	if got := len(repro.StandardUtilizations()); got != 11 {
		t.Errorf("standard grid = %d", got)
	}

	// Analyses.
	trend, err := repro.YearlyTrend(valid)
	if err != nil {
		t.Fatal(err)
	}
	if len(trend) != 13 {
		t.Errorf("trend years = %d", len(trend))
	}
	if reg, err := repro.FitIdleRegression(valid); err != nil || reg.Fit.A < 1 {
		t.Errorf("regression: %+v, %v", reg, err)
	}
	if corr, err := repro.ComputeCorrelations(valid); err != nil || corr.EPvsOverallEE < 0.5 {
		t.Errorf("correlations: %+v, %v", corr, err)
	}
	if env := repro.PowerEnvelope(valid); len(env.Lower) != 11 {
		t.Error("envelope")
	}
	// Table I's seven buckets are always present; off-table ratios can
	// add more when one crosses the count threshold.
	if buckets := repro.MemoryPerCore(valid, 10); len(buckets) < 7 {
		t.Errorf("MPC buckets = %d", len(buckets))
	}
	if async := repro.Asynchronization(valid); async.TopN != 47 {
		t.Errorf("async TopN = %d", async.TopN)
	}
	if groups := repro.ByNodes(valid, 3); len(groups) < 4 {
		t.Error("node groups")
	}
	if fams := repro.ByFamily(valid); len(fams) < 5 {
		t.Error("families")
	}

	// Hardware experiment through the facade.
	servers := repro.TableIIServers()
	if len(servers) != 4 {
		t.Fatal("Table II servers")
	}
	pts, err := repro.Sweep(servers[1],
		[]repro.MemoryConfig{{TotalGB: 16, DIMMSizeGB: 4}},
		[]repro.Governor{repro.PowerSave(), repro.Performance(), repro.OnDemand()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[0].OverallEE >= pts[1].OverallEE {
		t.Errorf("sweep: powersave should lose to performance: %+v", pts)
	}
	runner, err := repro.NewBenchRunner(repro.BenchConfig{
		Server:          servers[3],
		Governor:        repro.UserSpace(1.8),
		IntervalSeconds: 10,
		Fidelity:        repro.FidelityTransaction,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels[9].LatencyP99 <= 0 {
		t.Error("transaction fidelity latency missing")
	}

	// Placement and clusters.
	fleet := make([]*repro.PlacementProfile, 0, 20)
	var capacity float64
	for _, r := range valid.YearRange(2012, 2016).All()[:20] {
		p, err := repro.NewPlacementProfile(r.ID, r.MustCurve())
		if err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, p)
		capacity += p.MaxOps
	}
	plan, err := repro.PlaceProportional(fleet, 0.4*capacity, repro.PlacementOptions{})
	if err != nil || !plan.Satisfied {
		t.Fatalf("placement: %v", err)
	}
	if _, err := repro.BuildClusters(fleet, 0.1); err != nil {
		t.Fatal(err)
	}
	if cmp, err := repro.CompareClusterPolicies(fleet); err != nil || len(cmp.Rows) != 4 {
		t.Fatalf("cluster comparison: %v", err)
	}
	if sp, err := repro.ClusterScalingStudy(fleet[0], []int{1, 4}, repro.PolicyPackPowerOff); err != nil || len(sp) != 2 {
		t.Fatalf("scaling study: %v", err)
	}

	// Traces.
	tr, err := repro.DiurnalTrace(repro.DiurnalConfig{Seed: 1, Days: 1, BaseOps: 0.4 * capacity, DailySwing: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	results, err := repro.CompareTraceStrategies(tr, fleet, repro.PlacementOptions{})
	if err != nil || len(results) != 3 {
		t.Fatalf("trace strategies: %v", err)
	}

	// Workload.
	m, err := repro.SimulateWorkload(repro.WorkloadConfig{
		Seed: 1, CapacityOpsPerSec: 1e5, TargetRate: 5e4, DurationSeconds: 20,
	})
	if err != nil || m.CompletedTx == 0 {
		t.Fatalf("workload: %v", err)
	}
	if len(repro.DefaultTxMix()) != 6 {
		t.Error("tx mix")
	}

	// The whole evaluation document renders.
	doc, err := repro.FullReport(valid, repro.ReportOptions{Sweeps: false})
	if err != nil || len(doc) < 10000 {
		t.Fatalf("full report: %v (%d bytes)", err, len(doc))
	}
}

func TestFacadeExtensions(t *testing.T) {
	corpus, err := repro.GenerateCorpus(repro.SynthConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	valid := corpus.Valid()

	// Calibration self-check through the facade.
	checks, err := repro.VerifyCalibration(corpus)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if !c.OK {
			t.Errorf("calibration check %q failed: got %s want %s", c.Name, c.Got, c.Paper)
		}
	}

	// Fit + what-if through the facade.
	var model repro.ServerConfig
	fitted := false
	for _, r := range valid.SingleNode().YearRange(2012, 2016).All() {
		if m, err := repro.FitServer(r); err == nil {
			model, fitted = m, true
			break
		}
	}
	if !fitted {
		t.Fatal("no fittable server")
	}
	if model.TotalCores() == 0 {
		t.Error("fitted model empty")
	}

	// Projection and gap trend.
	proj, err := repro.ProjectTrends(valid, 2020)
	if err != nil || proj.Year != 2020 {
		t.Fatalf("projection: %v", err)
	}
	gaps, err := repro.ProportionalityGapByYear(valid)
	if err != nil || len(gaps) == 0 {
		t.Fatalf("gap trend: %v", err)
	}
	rates, err := repro.ImprovementRates(valid, [][2]int{{2007, 2012}})
	if err != nil || len(rates) != 1 {
		t.Fatalf("rates: %v", err)
	}

	// KnightShift through the facade.
	servers := valid.SortByEP()
	primary, err := repro.NewPlacementProfile("p", servers[50].MustCurve())
	if err != nil {
		t.Fatal(err)
	}
	knightCurve, err := repro.NewStandardCurve(3,
		[]float64{5, 7, 9, 11, 13, 15, 17, 19, 21, 23},
		[]float64{1e4, 2e4, 3e4, 4e4, 5e4, 6e4, 7e4, 8e4, 9e4, 1e5})
	if err != nil {
		t.Fatal(err)
	}
	knight, err := repro.NewPlacementProfile("k", knightCurve)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := repro.KnightShift(primary, knight, true)
	if err != nil {
		t.Fatal(err)
	}
	if combined.EP() <= primary.EP {
		t.Errorf("KnightShift EP %.3f should beat the primary's %.3f", combined.EP(), primary.EP)
	}

	// Disclosure + cost round out the surface.
	if _, err := repro.Disclosure(servers[50]); err != nil {
		t.Fatal(err)
	}
	bill, err := repro.EnergyCost(repro.ReplayResult{EnergyKWh: 10}, repro.DefaultTariff())
	if err != nil || bill.USD <= 0 {
		t.Fatalf("cost: %v", err)
	}

	// Time-varying intensity surface: shapes, CSV ingestion, alignment,
	// the 2-D fold, and the embodied-carbon default.
	prof, err := repro.DiurnalIntensity(repro.IntensityConfig{})
	if err != nil || len(prof.Rates) != 24 {
		t.Fatalf("DiurnalIntensity: %v (%d rates)", err, len(prof.Rates))
	}
	if duck, err := repro.DuckCurveIntensity(repro.IntensityConfig{}); err != nil || duck.Mean() >= prof.Mean() {
		t.Fatalf("DuckCurveIntensity: %v", err)
	}
	csvProf, err := repro.ReadIntensityCSV(strings.NewReader("0.2\n0.6\n"), 3600)
	if err != nil || csvProf.Mean() != 0.4 {
		t.Fatalf("ReadIntensityCSV: %v", err)
	}
	tr, err := repro.DiurnalTrace(repro.DiurnalConfig{Seed: 1, Days: 1, StepSeconds: 900, BaseOps: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	aligned, err := prof.Align(len(tr.DemandOps), tr.StepSeconds)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := repro.CompressTrace2D(tr, 32, 4, aligned)
	if err != nil || h2.Cells() == 0 {
		t.Fatalf("CompressTrace2D: %v", err)
	}
	if emb := repro.DefaultEmbodiedCarbon(); emb.KgCO2e <= 0 || emb.LifetimeHours <= 0 {
		t.Fatalf("DefaultEmbodiedCarbon: %+v", emb)
	}
}
