// Columnar-core benchmark set: generation, load, full-analysis report,
// and cluster composition at fleet scale (10k / 100k / 1M servers).
// `make colbench` runs every benchmark here exactly once (benchtime=1x)
// as the CI smoke; BENCH_columnar.json records the trajectory.
package repro_test

import (
	"bytes"
	"sync"
	"testing"

	"repro"
)

// colStores caches one generated column store per fleet size, shared
// across the load/compose benchmarks (their setup is not what's
// measured). The report benchmarks generate fresh stores instead, so
// the first timed iteration pays the cold derived-column build.
var (
	colStoreMu sync.Mutex
	colStores  = map[int]*repro.ColumnStore{}
)

func colStore(b *testing.B, n int) *repro.ColumnStore {
	b.Helper()
	colStoreMu.Lock()
	defer colStoreMu.Unlock()
	if cs, ok := colStores[n]; ok {
		return cs
	}
	cs, err := repro.GenerateFleetStore(repro.FleetConfig{Seed: 1, Servers: n})
	if err != nil {
		b.Fatal(err)
	}
	colStores[n] = cs
	return cs
}

// ---- generation ----

func benchmarkColumnarGenerate(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cs, err := repro.GenerateFleetStore(repro.FleetConfig{Seed: 1, Servers: n})
		if err != nil {
			b.Fatal(err)
		}
		if cs.Len() != n {
			b.Fatalf("generated %d rows", cs.Len())
		}
	}
}

func BenchmarkColumnarGenerate10k(b *testing.B)  { benchmarkColumnarGenerate(b, 10_000) }
func BenchmarkColumnarGenerate100k(b *testing.B) { benchmarkColumnarGenerate(b, 100_000) }
func BenchmarkColumnarGenerate1M(b *testing.B)   { benchmarkColumnarGenerate(b, 1_000_000) }

// ---- binary load: record-major v1 vs sectioned columnar v2 ----
//
// Both formats load through the same entry point (ReadColumnsBytes,
// the ReadPath route for on-disk corpora) into the same artifact, a
// ColumnStore, so the pair isolates the cost of the wire encoding:
// v1 decodes record by record through the column builder, v2 decodes
// whole column sections in place.

func benchmarkColumnarLoad(b *testing.B, n int, v2 bool) {
	cs := colStore(b, n)
	var buf bytes.Buffer
	var err error
	if v2 {
		err = repro.WriteColumns(&buf, cs)
	} else {
		err = repro.WriteBinary(&buf, cs.Materialize())
	}
	if err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := repro.ReadColumnsBytes(data)
		if err != nil {
			b.Fatal(err)
		}
		if got.Len() != n {
			b.Fatalf("loaded %d rows", got.Len())
		}
	}
}

func BenchmarkColumnarLoadV1_10k(b *testing.B)  { benchmarkColumnarLoad(b, 10_000, false) }
func BenchmarkColumnarLoadV2_10k(b *testing.B)  { benchmarkColumnarLoad(b, 10_000, true) }
func BenchmarkColumnarLoadV1_100k(b *testing.B) { benchmarkColumnarLoad(b, 100_000, false) }
func BenchmarkColumnarLoadV2_100k(b *testing.B) { benchmarkColumnarLoad(b, 100_000, true) }
func BenchmarkColumnarLoadV1_1M(b *testing.B)   { benchmarkColumnarLoad(b, 1_000_000, false) }
func BenchmarkColumnarLoadV2_1M(b *testing.B)   { benchmarkColumnarLoad(b, 1_000_000, true) }

// ---- full analysis suite + text report ----

var colReportLen int

func benchmarkColumnarReport(b *testing.B, n int) {
	// A fresh store per benchmark run: the first timed iteration pays
	// the cold derived-metric build, exactly like a CLI invocation on a
	// loaded corpus.
	cs, err := repro.GenerateFleetStore(repro.FleetConfig{Seed: 1, Servers: n})
	if err != nil {
		b.Fatal(err)
	}
	rp := repro.NewColumnRepository(cs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := repro.FullReport(rp, repro.ReportOptions{Sweeps: false})
		if err != nil {
			b.Fatal(err)
		}
		colReportLen = len(out)
	}
}

func BenchmarkColumnarReport10k(b *testing.B)  { benchmarkColumnarReport(b, 10_000) }
func BenchmarkColumnarReport100k(b *testing.B) { benchmarkColumnarReport(b, 100_000) }
func BenchmarkColumnarReport1M(b *testing.B)   { benchmarkColumnarReport(b, 1_000_000) }

// ---- cluster composition at 1M (10k/100k live in bench_test.go) ----

func BenchmarkColumnarCompose1M(b *testing.B) {
	fleet := benchFleetProfiles(b, 1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, err := repro.ComposeCluster(fleet, repro.PolicyPack)
		if err != nil {
			b.Fatal(err)
		}
		if agg.EP() <= 0 {
			b.Fatal("non-positive cluster EP")
		}
	}
}
