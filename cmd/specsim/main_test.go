package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCSVDigestWorkerInvariant is the golden worker-invariance check:
// the full per-step CSV stream must be byte-identical at workers 1, 2,
// and 8 — the trace segments stitch deterministically no matter how
// they were scheduled. Latency sampling stays off here (its worker
// invariance is pinned by fleetsim's stitching test on small servers);
// at synthetic-fleet capacities the transaction-level sampler would
// dominate the test's runtime.
func TestCSVDigestWorkerInvariant(t *testing.T) {
	var first string
	for _, workers := range []string{"1", "2", "8"} {
		var out, errBuf bytes.Buffer
		err := run([]string{
			"-servers", "64", "-duration", "2", "-step", "300",
			"-format", "csv", "-workers", workers,
		}, &out, &errBuf)
		if err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		sum := sha256.Sum256(out.Bytes())
		digest := hex.EncodeToString(sum[:])
		if first == "" {
			first = digest
			if lines := strings.Count(out.String(), "\n"); lines != 1+576 {
				t.Fatalf("csv lines = %d, want header + 576 steps", lines)
			}
		} else if digest != first {
			t.Fatalf("workers=%s digest %s != workers=1 digest %s", workers, digest, first)
		}
	}
}

func TestTextSummary(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-servers", "100", "-duration", "1", "-step", "300"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"policy", "pack+off", "energy", "active", "transitions"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestJSONSummary(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-servers", "100", "-duration", "1", "-step", "300",
		"-trace", "bursty", "-policy", "pack", "-format", "json",
	}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Policy    string  `json:"Policy"`
		Servers   int     `json:"Servers"`
		Steps     int     `json:"Steps"`
		EnergyKWh float64 `json:"EnergyKWh"`
	}
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("bad json: %v\n%s", err, out.String())
	}
	if res.Policy != "pack" || res.Servers != 100 || res.Steps != 288 || res.EnergyKWh <= 0 {
		t.Fatalf("unexpected summary %+v", res)
	}
}

func TestCSVTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demand.csv")
	data := "time_s,demand_ops\n0,1e6\n300,2e6\n600,0\n900,5e7\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	err := run([]string{"-servers", "50", "-trace", path, "-step", "300", "-format", "csv"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(out.String(), "\n"); lines != 1+4 {
		t.Fatalf("csv lines = %d, want header + 4 steps", lines)
	}
}

// TestPricedSummary covers the -price/-carbon lines in text and JSON;
// they only appear when a rate is set.
func TestPricedSummary(t *testing.T) {
	base := []string{"-servers", "50", "-duration", "1", "-step", "300"}
	var plain, priced, errBuf bytes.Buffer
	if err := run(base, &plain, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, stray := range []string{"cost", "carbon", "facility"} {
		if strings.Contains(plain.String(), stray) {
			t.Errorf("unpriced summary contains %q:\n%s", stray, plain.String())
		}
	}
	err := run(append(base, "-price", "0.10", "-carbon", "0.45", "-pue", "1.5"), &priced, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"facility", "PUE 1.50", "cost", "$", "carbon", "kgCO2"} {
		if !strings.Contains(priced.String(), want) {
			t.Errorf("priced summary missing %q:\n%s", want, priced.String())
		}
	}

	var jsonOut bytes.Buffer
	err = run(append(base, "-format", "json", "-price", "0.10", "-pue", "1.5"), &jsonOut, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		EnergyKWh float64 `json:"EnergyKWh"`
		Bill      *struct {
			FacilityKWh, USD, KgCO2 float64
		} `json:"Bill"`
	}
	if err := json.Unmarshal(jsonOut.Bytes(), &res); err != nil {
		t.Fatalf("bad json: %v\n%s", err, jsonOut.String())
	}
	if res.Bill == nil {
		t.Fatalf("priced JSON missing Bill:\n%s", jsonOut.String())
	}
	wantFacility := 1.5 * res.EnergyKWh
	if diff := res.Bill.FacilityKWh - wantFacility; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("facility %v, want %v", res.Bill.FacilityKWh, wantFacility)
	}
	if res.Bill.USD <= 0 || res.Bill.KgCO2 != 0 {
		t.Errorf("bill %+v", res.Bill)
	}

	var plainJSON bytes.Buffer
	if err := run(append(base, "-format", "json"), &plainJSON, &errBuf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plainJSON.String(), "Bill") {
		t.Errorf("unpriced JSON carries Bill:\n%s", plainJSON.String())
	}
}

// TestIntensityCSVDigestWorkerInvariant extends the golden
// worker-invariance check to time-varying carbon billing: with an
// intensity profile attached the per-step CSV gains a carbon_kg column
// and must stay byte-identical at workers 1, 2, and 8.
func TestIntensityCSVDigestWorkerInvariant(t *testing.T) {
	var first string
	for _, workers := range []string{"1", "2", "8"} {
		var out, errBuf bytes.Buffer
		err := run([]string{
			"-servers", "64", "-duration", "2", "-step", "300",
			"-format", "csv", "-workers", workers,
			"-intensity", "diurnal", "-pue", "1.5",
		}, &out, &errBuf)
		if err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		sum := sha256.Sum256(out.Bytes())
		digest := hex.EncodeToString(sum[:])
		if first == "" {
			first = digest
			s := out.String()
			header := s[:strings.IndexByte(s, '\n')]
			if !strings.HasSuffix(header, ",carbon_kg") {
				t.Fatalf("header missing carbon column: %q", header)
			}
			rows := strings.Split(strings.TrimSpace(s), "\n")[1:]
			if len(rows) != 576 {
				t.Fatalf("csv rows = %d, want 576", len(rows))
			}
			for i, row := range rows {
				cols := strings.Split(row, ",")
				if v := cols[len(cols)-1]; v == "" || v == "0" {
					t.Fatalf("row %d carbon_kg = %q, want positive", i, v)
				}
			}
		} else if digest != first {
			t.Fatalf("workers=%s digest %s != workers=1 digest %s", workers, digest, first)
		}
	}
}

// TestIntensitySummaries covers the time-varying carbon lines in text
// and JSON, including a CSV profile file and duck-curve generator.
func TestIntensitySummaries(t *testing.T) {
	base := []string{"-servers", "50", "-duration", "1", "-step", "300"}
	var text, errBuf bytes.Buffer
	err := run(append(base, "-intensity", "duck", "-carbon", "0.5", "-pue", "1.5"), &text, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	// The duck curve's solar trough pulls its mean below the 0.5 base.
	for _, want := range []string{"intensity", "duck", "mean 0.45", "kg/kWh", "kgCO2 time-varying", "PUE 1.50"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, text.String())
		}
	}

	path := filepath.Join(t.TempDir(), "grid.csv")
	data := "time_s,kg_per_kwh\n0,0.2\n3600,0.6\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	var jsonOut bytes.Buffer
	err = run(append(base, "-format", "json", "-intensity", path), &jsonOut, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		CarbonKg  float64 `json:"CarbonKg"`
		Intensity *struct {
			Name         string
			Steps        int
			MeanKgPerKWh float64
		} `json:"Intensity"`
	}
	if err := json.Unmarshal(jsonOut.Bytes(), &res); err != nil {
		t.Fatalf("bad json: %v\n%s", err, jsonOut.String())
	}
	if res.CarbonKg <= 0 || res.Intensity == nil {
		t.Fatalf("json missing carbon accounting:\n%s", jsonOut.String())
	}
	if res.Intensity.Name != "csv" || res.Intensity.Steps != 2 || res.Intensity.MeanKgPerKWh != 0.4 {
		t.Errorf("intensity block %+v", res.Intensity)
	}

	var plain bytes.Buffer
	if err := run(append(base, "-format", "json"), &plain, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, stray := range []string{"Intensity", "CarbonKg"} {
		if strings.Contains(plain.String(), stray) {
			t.Errorf("default JSON carries %q:\n%s", stray, plain.String())
		}
	}
}

func TestBadArgs(t *testing.T) {
	cases := [][]string{
		{"-policy", "nonsense"},
		{"-format", "pdf"},
		{"-trace", "/nope/missing.csv"},
		{"-duration", "0"},
		{"-servers", "0"},
		{"-price", "-1"},
		{"-price", "0.1", "-pue", "0.5"},
		{"-intensity", "/nope/missing.csv"},
		{"-intensity", "diurnal", "-carbon", "-0.4"},
		{"-intensity", "diurnal", "-intensity-step", "-60"},
		{"-intensity", "diurnal", "-intensity-step", "700"},
		{"-intensity", "diurnal", "-pue", "0.5"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if err := run(args, &out, &errBuf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-version"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "specsim") {
		t.Errorf("version output %q", out.String())
	}
}
