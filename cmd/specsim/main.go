// Command specsim runs the streaming fleet simulator: it generates a
// synthetic fleet at any scale, replays a demand trace (diurnal or
// bursty generators, or a CSV trace file) against it under a cluster
// policy with power-management costs, and reports per-interval or
// summary accounting. The incremental stepper makes a 100k-server week
// at 1-minute resolution a seconds-scale run.
//
// Usage:
//
//	specsim [-servers N] [-trace diurnal|bursty|FILE.csv] [-policy P]
//	        [-step SEC] [-duration DAYS] [-workers N]
//	        [-format text|csv|json] [-seed N] [-load F] [-swing F]
//	        [-hyst STEPS] [-headroom F] [-min-active N]
//	        [-on SEC] [-off SEC] [-latency-every N]
//	        [-price USD] [-carbon KG] [-pue F]
//	        [-intensity diurnal|duck|FILE.csv] [-intensity-step SEC]
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/fleetsim"
	"repro/internal/optimize"
	"repro/internal/par"
	"repro/internal/placement"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "specsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.New("specsim",
		"[-servers N] [-trace diurnal|bursty|FILE.csv] [-policy P] [-step SEC] [-duration DAYS] [-format text|csv|json]",
		"replays a demand trace against a synthetic fleet with online power management and per-interval energy accounting", stderr)
	var (
		servers  = fs.Int("servers", 1000, "fleet size")
		traceArg = fs.String("trace", "diurnal", "demand source: diurnal, bursty, or a CSV trace file")
		policyS  = fs.String("policy", "pack+off", "cluster policy: spread, pack, pack+off, optimal-region")
		step     = fs.Float64("step", 60, "simulation step in seconds")
		duration = fs.Float64("duration", 7, "trace length in days (generated traces)")
		workers  = fs.Int("workers", 0, "worker cap for trace segments (0 = all CPUs)")
		format   = fs.String("format", "text", "output: text (summary), csv (per step), json (summary)")
		seed     = fs.Int64("seed", 1, "seed for fleet, trace, and latency sampling")
		load     = fs.Float64("load", 0.45, "mean demand as a fraction of fleet capacity")
		swing    = fs.Float64("swing", 0.55, "diurnal swing amplitude [0, 1)")
		hyst     = fs.Int("hyst", 5, "power-off hysteresis in steps")
		headroom = fs.Float64("headroom", 0.05, "active-set headroom fraction")
		minAct   = fs.Int("min-active", 1, "minimum active servers")
		onSec    = fs.Float64("on", 30, "power-on transition seconds (billed at full-load draw)")
		offSec   = fs.Float64("off", 10, "power-off transition seconds (billed at idle draw)")
		latEvery = fs.Int("latency-every", 0, "sample marginal-server latency every N steps (0 = off)")
		price    = fs.Float64("price", 0, "electricity price, USD per kWh (0 = no cost line)")
		carbon   = fs.Float64("carbon", 0, "grid carbon intensity, kg CO2 per kWh (0 = no carbon line)")
		pue      = fs.Float64("pue", 1, "facility power usage effectiveness for cost/carbon pricing")
		intens   = fs.String("intensity", "", "time-varying grid intensity: diurnal, duck, or a CSV profile file (empty = static -carbon rate)")
		intStep  = fs.Float64("intensity-step", 3600, "intensity profile sampling period in seconds")
	)
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}
	if *workers > 0 {
		par.SetMaxWorkers(*workers)
	}
	policy, err := parsePolicy(*policyS)
	if err != nil {
		return err
	}
	if *duration <= 0 {
		return fmt.Errorf("duration %v days", *duration)
	}

	results, err := synth.GenerateFleet(synth.FleetConfig{Seed: *seed, Servers: *servers})
	if err != nil {
		return err
	}
	fleet, err := par.MapErr(len(results), func(i int) (*placement.Profile, error) {
		c, err := results[i].Curve()
		if err != nil {
			return nil, err
		}
		return placement.NewProfile(results[i].ID, c)
	})
	if err != nil {
		return err
	}
	var capacity float64
	for _, p := range fleet {
		capacity += p.MaxOps
	}

	tr, err := buildTrace(*traceArg, *seed, *step, *duration, *load*capacity, *swing)
	if err != nil {
		return err
	}

	// A time-varying intensity profile switches carbon accounting from
	// the static post-hoc bill to per-step billing inside the stepper;
	// -carbon then sets the generated profile's mean rather than a flat
	// rate (a CSV profile carries its own levels).
	var prof *trace.IntensityProfile
	if *intens != "" {
		prof, err = buildIntensity(*intens, *intStep, *carbon)
		if err != nil {
			return err
		}
	}

	cfg := fleetsim.Config{
		Members: fleet,
		Policy:  policy,
		Trace:   tr,
		Power: fleetsim.PowerConfig{
			OnSeconds:       *onSec,
			OffSeconds:      *offSec,
			HysteresisSteps: *hyst,
			HeadroomFrac:    *headroom,
			MinActive:       *minAct,
		},
		Latency: fleetsim.LatencyConfig{Every: *latEvery},
		Seed:    *seed,
	}
	if prof != nil {
		cfg.Carbon = prof
		cfg.PUE = *pue
	}

	if *format == "csv" {
		header := "step,demand_ops,served_ops,unserved_ops,active,powered_on,powered_off,power_w,transition_j,energy_j,latency_p50_s,latency_p95_s,latency_p99_s"
		if prof != nil {
			header += ",carbon_kg"
		}
		fmt.Fprintln(stdout, header)
		cfg.Sink = func(s fleetsim.StepStats) error {
			return writeCSVStep(stdout, s, prof != nil)
		}
	}
	res, err := fleetsim.Run(cfg)
	if err != nil {
		return err
	}

	// Pricing rides on the optimizer's objective layer; the lines only
	// appear when a rate is set, so default output (and its golden
	// digests) is unchanged.
	var bill *trace.Bill
	staticCarbon := *carbon
	if prof != nil {
		// Carbon is billed per step from the profile; the static bill
		// keeps only the cost/facility lines.
		staticCarbon = 0
	}
	if *price != 0 || staticCarbon != 0 {
		o := optimize.Objective{Tariff: trace.Tariff{USDPerKWh: *price, KgCO2PerKWh: staticCarbon, PUE: *pue}}
		b, err := o.Bill(res.EnergyKWh)
		if err != nil {
			return err
		}
		bill = &b
	}

	switch *format {
	case "csv":
		return nil
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		// Round-trip through a map so the Policy field carries the
		// policy name instead of its internal enum value.
		raw, err := json.Marshal(res)
		if err != nil {
			return err
		}
		var obj map[string]any
		if err := json.Unmarshal(raw, &obj); err != nil {
			return err
		}
		obj["Policy"] = policy.String()
		if bill != nil {
			obj["Bill"] = bill
		}
		if prof != nil {
			obj["Intensity"] = map[string]any{
				"Name":         prof.Name,
				"StepSeconds":  prof.StepSeconds,
				"Steps":        len(prof.Rates),
				"MeanKgPerKWh": prof.Mean(),
			}
		}
		return enc.Encode(obj)
	case "text":
		writeText(stdout, res)
		if prof != nil {
			writeIntensity(stdout, res, prof, *pue)
		}
		if bill != nil {
			writeBill(stdout, *bill, *price, staticCarbon, *pue)
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// buildIntensity resolves the -intensity argument: a generator name
// (diurnal, duck) whose mean is the -carbon rate when one is set, or a
// CSV profile file carrying its own rates.
func buildIntensity(arg string, stepSec, baseKgPerKWh float64) (*trace.IntensityProfile, error) {
	switch arg {
	case "diurnal":
		return trace.DiurnalIntensity(trace.IntensityConfig{StepSeconds: stepSec, BaseKgPerKWh: baseKgPerKWh})
	case "duck":
		return trace.DuckCurveIntensity(trace.IntensityConfig{StepSeconds: stepSec, BaseKgPerKWh: baseKgPerKWh})
	default:
		f, err := os.Open(arg)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadIntensityCSV(f, stepSec)
	}
}

// writeIntensity appends the time-varying carbon summary lines.
func writeIntensity(w io.Writer, res fleetsim.Result, prof *trace.IntensityProfile, pue float64) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "intensity\t%s (%d × %.0f s, mean %.3g kg/kWh)\n",
		prof.Name, len(prof.Rates), prof.StepSeconds, prof.Mean())
	fmt.Fprintf(tw, "carbon\t%.1f kgCO2 time-varying (PUE %.2f)\n", res.CarbonKg, pue)
	tw.Flush()
}

// writeBill appends the priced summary lines.
func writeBill(w io.Writer, b trace.Bill, price, carbon, pue float64) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "facility\t%.1f kWh (PUE %.2f)\n", b.FacilityKWh, pue)
	if price > 0 {
		fmt.Fprintf(tw, "cost\t$%.2f at $%.3g/kWh\n", b.USD, price)
	}
	if carbon > 0 {
		fmt.Fprintf(tw, "carbon\t%.1f kgCO2 at %.3g kg/kWh\n", b.KgCO2, carbon)
	}
	tw.Flush()
}

func parsePolicy(s string) (cluster.Policy, error) {
	for _, p := range cluster.AllPolicies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

// buildTrace resolves the -trace argument: a generator name or a CSV
// trace file path.
func buildTrace(arg string, seed int64, stepSec, days, baseOps, swing float64) (*trace.Trace, error) {
	switch arg {
	case "diurnal":
		return trace.Diurnal(trace.DiurnalConfig{
			Seed:          seed,
			Days:          int(days + 0.5),
			StepSeconds:   stepSec,
			BaseOps:       baseOps,
			DailySwing:    swing,
			NoiseFrac:     0.04,
			SpikeProb:     0.002,
			WeekendFactor: 0.7,
		})
	case "bursty":
		return trace.Bursty(trace.BurstyConfig{
			Seed:        seed,
			Steps:       int(days*86400/stepSec + 0.5),
			StepSeconds: stepSec,
			BaseOps:     baseOps,
		})
	default:
		f, err := os.Open(arg)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadCSV(f, stepSec)
	}
}

// writeCSVStep emits one per-interval row. Floats format with
// round-trip precision so the byte stream is a faithful image of the
// simulation — the golden-digest tests hash it across worker counts.
func writeCSVStep(w io.Writer, s fleetsim.StepStats, withCarbon bool) error {
	var b strings.Builder
	b.Grow(192)
	b.WriteString(strconv.Itoa(s.Step))
	for _, v := range []float64{s.DemandOps, s.ServedOps, s.UnservedOps} {
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	for _, n := range []int{s.Active, s.PoweredOn, s.PoweredOff} {
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(n))
	}
	for _, v := range []float64{s.PowerWatts, s.TransitionJ, s.EnergyJ} {
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	if s.Sampled {
		for _, v := range []float64{s.LatencyP50, s.LatencyP95, s.LatencyP99} {
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
	} else {
		b.WriteString(",,,")
	}
	if withCarbon {
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(s.CarbonKg, 'g', -1, 64))
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

func writeText(w io.Writer, res fleetsim.Result) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "policy\t%s\n", res.Policy)
	fmt.Fprintf(tw, "servers\t%d (%.1fM ops capacity)\n", res.Servers, res.CapacityOps/1e6)
	fmt.Fprintf(tw, "trace\t%d steps × %.0f s (%.2f days)\n",
		res.Steps, res.StepSeconds, float64(res.Steps)*res.StepSeconds/86400)
	fmt.Fprintf(tw, "energy\t%.1f kWh (%.1f kWh transitions)\n", res.EnergyKWh, res.TransitionKWh)
	fmt.Fprintf(tw, "power\tavg %.0f W, peak %.0f W\n", res.AvgPowerWatts, res.PeakPowerWatts)
	fmt.Fprintf(tw, "fleet EE\t%.1f ops/s per W\n", res.AvgEE)
	fmt.Fprintf(tw, "active\tavg %.1f, min %d, max %d\n", res.AvgActive, res.MinActive, res.MaxActive)
	fmt.Fprintf(tw, "transitions\t%d on, %d off\n", res.PoweredOn, res.PoweredOff)
	fmt.Fprintf(tw, "served\t%.0f ops avg (%.2f%% unserved)\n",
		res.ServedOps, 100*safeDiv(res.UnservedOps, res.ServedOps+res.UnservedOps))
	if res.LatencySamples > 0 {
		fmt.Fprintf(tw, "latency\t%d samples: p50 %.1f ms, p95 %.1f ms, p99 %.1f ms (worst p99 %.1f ms)\n",
			res.LatencySamples, 1e3*res.AvgLatencyP50, 1e3*res.AvgLatencyP95,
			1e3*res.AvgLatencyP99, 1e3*res.MaxLatencyP99)
	}
	tw.Flush()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
