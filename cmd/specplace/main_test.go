package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefaultPlan(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-fleet", "20", "-demand", "0.4"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"logical clusters", "proportional", "pack-to-full", "spread-evenly", "satisfied"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunWithPowerCap(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-fleet", "15", "-demand", "0", "-cap-watts", "3000", "-power-off"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "under a 3000 W cap") {
		t.Errorf("cap plan missing:\n%s", out.String())
	}
}

func TestRunEmptyYearRange(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-from", "1999", "-to", "2000"}, &out, &errBuf); err == nil {
		t.Error("empty range accepted")
	}
}
