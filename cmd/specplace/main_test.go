package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"
)

func TestRunDefaultPlan(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-fleet", "20", "-demand", "0.4"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"logical clusters", "proportional", "pack-to-full", "spread-evenly", "satisfied"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunWithPowerCap(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-fleet", "15", "-demand", "0", "-cap-watts", "3000", "-power-off"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "under a 3000 W cap") {
		t.Errorf("cap plan missing:\n%s", out.String())
	}
}

func TestRunEmptyYearRange(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-from", "1999", "-to", "2000"}, &out, &errBuf); err == nil {
		t.Error("empty range accepted")
	}
}

// TestSampleSeed pins the fleet-selection fix: the default seeded
// sample is deterministic but differs from the legacy take-first-n
// prefix, which stays reachable at -sample-seed 0.
func TestSampleSeed(t *testing.T) {
	runOut := func(args ...string) string {
		t.Helper()
		var out, errBuf bytes.Buffer
		if err := run(append([]string{"-fleet", "10", "-demand", "0.4"}, args...), &out, &errBuf); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	def := runOut()
	if def != runOut() {
		t.Error("default sample not deterministic")
	}
	if def != runOut("-sample-seed", "1") {
		t.Error("default differs from -sample-seed 1")
	}
	legacy := runOut("-sample-seed", "0")
	if legacy == def {
		t.Error("seeded sample identical to legacy prefix — sampling is not happening")
	}
	if legacy != runOut("-sample-seed", "0") {
		t.Error("legacy prefix not deterministic")
	}
	if runOut("-sample-seed", "7") == def {
		t.Error("different sample seeds selected the same fleet")
	}
}

// TestOptimizeDigestWorkerInvariant is the golden smoke test for the
// composition search: the full report must be byte-identical at 1, 2,
// and 8 workers.
func TestOptimizeDigestWorkerInvariant(t *testing.T) {
	var first string
	for _, workers := range []string{"1", "2", "8"} {
		var out, errBuf bytes.Buffer
		err := run([]string{
			"-optimize", "-models", "4", "-max-per-model", "5",
			"-opt-days", "2", "-opt-step", "300", "-objective", "cost",
			"-workers", workers,
		}, &out, &errBuf)
		if err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		sum := sha256.Sum256(out.Bytes())
		digest := hex.EncodeToString(sum[:])
		if first == "" {
			first = digest
			for _, want := range []string{"composition search", "exhaustive", "pack+off", "optimum:", "USD"} {
				if !strings.Contains(out.String(), want) {
					t.Errorf("report missing %q:\n%s", want, out.String())
				}
			}
		} else if digest != first {
			t.Fatalf("workers=%s digest %s != workers=1 digest %s", workers, digest, first)
		}
	}
}

// TestOptimizeCarbonAware covers the time-varying flags: intensity
// shapes, the region list, and embodied amortization, all worker-
// invariant on the report digest.
func TestOptimizeCarbonAware(t *testing.T) {
	base := []string{
		"-optimize", "-models", "4", "-max-per-model", "4",
		"-opt-days", "2", "-opt-step", "300", "-objective", "carbon",
	}
	runOut := func(args ...string) string {
		t.Helper()
		var out, errBuf bytes.Buffer
		if err := run(append(append([]string{}, base...), args...), &out, &errBuf); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}

	var first string
	for _, workers := range []string{"1", "2", "8"} {
		s := runOut("-intensity", "duck", "-rate-bins", "6", "-embodied", "1300", "-workers", workers)
		sum := sha256.Sum256([]byte(s))
		digest := hex.EncodeToString(sum[:])
		if first == "" {
			first = digest
			for _, want := range []string{"rates: time-varying (duck)", "demand×rate cells", "optimum:", "kgCO2"} {
				if !strings.Contains(s, want) {
					t.Errorf("report missing %q:\n%s", want, s)
				}
			}
		} else if digest != first {
			t.Fatalf("workers=%s digest differs", workers)
		}
	}

	// A constant rate must keep the static 1-D path: no fold line.
	if s := runOut(); strings.Contains(s, "rates: time-varying") {
		t.Errorf("static run reports a fold:\n%s", s)
	}

	// Regions: the report gains a region column and sites the optimum.
	s := runOut("-intensity", "diurnal",
		"-regions", "dirty:0.10:0.45:1.5, clean:0.12:0.15:1.2")
	for _, want := range []string{"region", "clean", "optimum:", " in clean"} {
		if !strings.Contains(s, want) {
			t.Errorf("region report missing %q:\n%s", want, s)
		}
	}
}

// TestOptimizeBadArgs covers optimize-mode flag validation.
func TestOptimizeBadArgs(t *testing.T) {
	cases := [][]string{
		{"-optimize", "-objective", "joules"},
		{"-optimize", "-demand", "0"},
		{"-optimize", "-demand", "1.5"},
		{"-optimize", "-models", "0"},
		{"-optimize", "-top", "-1"},
		{"-optimize", "-intensity", "diurnal"},
		{"-optimize", "-objective", "carbon", "-intensity", "/nope/missing.csv"},
		{"-optimize", "-objective", "carbon", "-intensity", "diurnal", "-intensity-step", "700"},
		{"-optimize", "-objective", "carbon", "-regions", "a:0.1:0.45"},
		{"-optimize", "-objective", "carbon", "-regions", "a:0.1:zz:1.5"},
		{"-optimize", "-objective", "carbon", "-regions", " , "},
		{"-optimize", "-objective", "carbon", "-embodied", "1300", "-lifetime-years", "0"},
		{"-optimize", "-objective", "cost", "-embodied", "1300"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if err := run(args, &out, &errBuf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
