// Command specplace plans energy-proportionality-aware workload
// placement for a fleet drawn from a SPECpower dataset: it compares the
// EP-aware strategy against pack-to-full and spread-evenly at a given
// demand, prints the logical clusters (§V.C), and optionally maximizes
// throughput under a power cap.
//
// With -optimize it instead searches fleet-composition space: which
// mix of server models, at what counts, under which pack policy,
// minimizes energy, cost, or carbon against a synthetic diurnal demand
// trace (internal/optimize).
//
// Usage:
//
//	specplace [-in FILE | -seed N] [-from 2012 -to 2016] [-fleet 40]
//	          [-sample-seed N] [-demand 0.5] [-cap-watts 0] [-power-off]
//	specplace -optimize [-models 5] [-max-per-model 6] [-objective cost]
//	          [-price 0.10] [-carbon 0.45] [-pue 1.5] [-opt-days 7]
//	          [-intensity diurnal|duck|FILE.csv] [-rate-bins N]
//	          [-embodied KG -lifetime-years Y]
//	          [-regions "name:price:carbon:pue,..."]
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/optimize"
	"repro/internal/par"
	"repro/internal/placement"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "specplace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.New("specplace",
		"[-in FILE | -seed N] [-from Y -to Y] [-fleet N] [-demand F] [-cap-watts W]",
		"plans energy-proportionality-aware workload placement for a fleet drawn from a SPECpower dataset", stderr)
	var (
		in         = fs.String("in", "", "dataset file (.csv or .json); empty generates the synthetic corpus")
		seed       = fs.Int64("seed", 1, "seed for the synthetic corpus when -in is empty")
		from       = fs.Int("from", 2011, "earliest hardware availability year for the fleet")
		to         = fs.Int("to", 2016, "latest hardware availability year for the fleet")
		fleetN     = fs.Int("fleet", 40, "fleet size (servers drawn from the dataset)")
		demand     = fs.Float64("demand", 0.5, "workload demand as a fraction of fleet capacity")
		capWatts   = fs.Float64("cap-watts", 0, "when > 0, also maximize throughput under this power budget")
		powerOff   = fs.Bool("power-off", false, "treat unassigned servers as powered off")
		bandW      = fs.Float64("ep-band", 0.1, "EP band width for logical clustering")
		sampleSeed = fs.Int64("sample-seed", 1, "seed for the deterministic fleet sample; 0 takes the first -fleet rows in dataset order (legacy)")
		doOpt      = fs.Bool("optimize", false, "search fleet-composition space instead of placing a fixed fleet")
		optModels  = fs.Int("models", 5, "optimize: number of distinct server models in the composition alphabet")
		maxPer     = fs.Int("max-per-model", 6, "optimize: largest per-model server count")
		countStep  = fs.Int("count-step", 1, "optimize: count granularity")
		bins       = fs.Int("bins", 128, "optimize: demand-histogram resolution")
		objName    = fs.String("objective", "energy", "optimize: metric to minimize (energy, cost, carbon)")
		price      = fs.Float64("price", 0.10, "electricity price, USD per kWh")
		carbon     = fs.Float64("carbon", 0.45, "grid carbon intensity, kg CO2 per kWh")
		pue        = fs.Float64("pue", 1.5, "facility power usage effectiveness")
		topK       = fs.Int("top", 5, "optimize: shortlist size replayed exactly through the fleet simulator")
		optDays    = fs.Int("opt-days", 7, "optimize: demand-trace length in days")
		optStep    = fs.Float64("opt-step", 60, "optimize: demand-trace step in seconds")
		workers    = fs.Int("workers", 0, "worker cap for the parallel search (0 = GOMAXPROCS)")
		intens     = fs.String("intensity", "", "optimize: time-varying rate shape for the cost/carbon objective: diurnal, duck, or a CSV profile file")
		intStep    = fs.Float64("intensity-step", 3600, "optimize: intensity profile sampling period in seconds")
		rateBins   = fs.Int("rate-bins", 0, "optimize: intensity-axis bins of the 2-D demand×rate fold (0 = default)")
		embodiedKg = fs.Float64("embodied", 0, "optimize: embodied carbon per server, kg CO2e, amortized over -lifetime-years (carbon objective)")
		lifeYears  = fs.Float64("lifetime-years", 4, "optimize: server lifetime amortizing embodied carbon")
		regionsS   = fs.String("regions", "", "optimize: siting regions as name:price:carbon:pue,... — each candidate priced at its cheapest region")
	)
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}
	if *workers > 0 {
		defer par.SetMaxWorkers(par.SetMaxWorkers(*workers))
	}
	rp, err := load(*in, *seed)
	if err != nil {
		return err
	}
	servers := rp.Valid().YearRange(*from, *to).All()
	if len(servers) == 0 {
		return fmt.Errorf("no servers in %d-%d", *from, *to)
	}
	servers = sampleServers(servers, *fleetN, *sampleSeed)
	if *doOpt {
		return runOptimize(stdout, servers, optConfig{
			models: *optModels, maxPer: *maxPer, step: *countStep,
			bins: *bins, objective: *objName, topK: *topK,
			days: *optDays, stepSeconds: *optStep, demand: *demand,
			tariff: trace.Tariff{USDPerKWh: *price, KgCO2PerKWh: *carbon, PUE: *pue},
			seed:   *seed,
			intensity: *intens, intensityStep: *intStep, rateBins: *rateBins,
			embodiedKg: *embodiedKg, lifetimeYears: *lifeYears, regions: *regionsS,
		})
	}
	fleet := make([]*placement.Profile, 0, len(servers))
	var capacity float64
	for _, r := range servers {
		p, err := placement.NewProfile(r.ID, r.MustCurve())
		if err != nil {
			return err
		}
		fleet = append(fleet, p)
		capacity += p.MaxOps
	}
	opts := placement.Options{IdleServersOff: *powerOff}
	fmt.Fprintf(stdout, "fleet: %d servers (%d-%d), capacity %.2fM ops\n\n",
		len(fleet), *from, *to, capacity/1e6)

	clusters, err := placement.BuildClusters(fleet, *bandW)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "logical clusters (EP band %.2f):\n", *bandW)
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "cluster\tservers\tEP range\toptimal region\tcapacity (M ops)")
	for i, cl := range clusters {
		fmt.Fprintf(tw, "#%d\t%d\t%.2f-%.2f\t%.0f%%-%.0f%%\t%.2f\n",
			i+1, len(cl.Servers), cl.EPLow, cl.EPHigh,
			100*cl.Region.Lo, 100*cl.Region.Hi, cl.Capacity()/1e6)
	}
	tw.Flush()
	fmt.Fprintln(stdout)

	if *demand > 0 {
		demandOps := *demand * capacity
		type strat struct {
			name string
			fn   func([]*placement.Profile, float64, placement.Options) (placement.Plan, error)
		}
		strategies := []strat{
			{"proportional", placement.PlaceProportional},
			{"pack-to-full", placement.PackToFull},
			{"spread-evenly", placement.SpreadEvenly},
		}
		fmt.Fprintf(stdout, "placement at %.0f%% demand (%.2fM ops):\n", 100**demand, demandOps/1e6)
		tw = tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "strategy\tactive\tpower (W)\tfleet EE\tsatisfied")
		for _, s := range strategies {
			plan, err := s.fn(fleet, demandOps, opts)
			if err != nil {
				return fmt.Errorf("%s: %w", s.name, err)
			}
			active := 0
			for _, a := range plan.Assignments {
				if a.Utilization > 0 {
					active++
				}
			}
			fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.1f\t%v\n",
				s.name, active, plan.TotalPower, plan.EE(), plan.Satisfied)
		}
		tw.Flush()
		fmt.Fprintln(stdout)
	}

	if *capWatts > 0 {
		plan, err := placement.MaxThroughputUnderCap(fleet, *capWatts, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "under a %.0f W cap: %.2fM ops at %.1f ops/W (%.0f W drawn)\n",
			*capWatts, plan.TotalOps/1e6, plan.EE(), plan.TotalPower)
	}
	return nil
}

// buildObjective assembles the optimizer objective from the static
// tariff plus the optional time-varying shape and region list.
func (oc optConfig) buildObjective(metric optimize.Metric) (optimize.Objective, *trace.IntensityProfile, error) {
	var shape *trace.IntensityProfile
	if oc.intensity != "" {
		if metric == optimize.MetricEnergy {
			return optimize.Objective{}, nil, fmt.Errorf("-intensity needs -objective cost or carbon")
		}
		base := oc.tariff.KgCO2PerKWh
		if metric == optimize.MetricCost {
			base = oc.tariff.USDPerKWh
		}
		var err error
		shape, err = buildShape(oc.intensity, oc.intensityStep, base)
		if err != nil {
			return optimize.Objective{}, nil, err
		}
	}
	if oc.regions != "" {
		regions, err := parseRegions(oc.regions, metric, shape)
		if err != nil {
			return optimize.Objective{}, nil, err
		}
		return optimize.Objective{Metric: metric, Regions: regions}, shape, nil
	}
	obj := optimize.Objective{Metric: metric, Tariff: oc.tariff}
	if shape != nil {
		if metric == optimize.MetricCost {
			obj.Price = shape
		} else {
			obj.Carbon = shape
		}
	}
	return obj, shape, nil
}

// buildShape resolves the -intensity argument: a generator name whose
// mean is the matching static rate, or a CSV profile file carrying its
// own levels.
func buildShape(arg string, stepSec, base float64) (*trace.IntensityProfile, error) {
	switch arg {
	case "diurnal":
		return trace.DiurnalIntensity(trace.IntensityConfig{StepSeconds: stepSec, BaseKgPerKWh: base})
	case "duck":
		return trace.DuckCurveIntensity(trace.IntensityConfig{StepSeconds: stepSec, BaseKgPerKWh: base})
	default:
		f, err := os.Open(arg)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadIntensityCSV(f, stepSec)
	}
}

// parseRegions parses "name:price:carbon:pue,..." into siting regions.
// When a shape is set, every region prices the objective with the same
// shape rescaled to its own mean rate — the duck curve looks alike
// everywhere; only the grid mix level differs.
func parseRegions(s string, metric optimize.Metric, shape *trace.IntensityProfile) ([]optimize.Region, error) {
	var out []optimize.Region
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		f := strings.Split(ent, ":")
		if len(f) != 4 {
			return nil, fmt.Errorf("region %q: want name:price:carbon:pue", ent)
		}
		var vals [3]float64
		for i, fld := range f[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(fld), 64)
			if err != nil {
				return nil, fmt.Errorf("region %q: %v", ent, err)
			}
			vals[i] = v
		}
		r := optimize.Region{
			Name:   strings.TrimSpace(f[0]),
			Tariff: trace.Tariff{USDPerKWh: vals[0], KgCO2PerKWh: vals[1], PUE: vals[2]},
		}
		if shape != nil {
			mean := vals[1]
			if metric == optimize.MetricCost {
				mean = vals[0]
			}
			p, err := shape.Scaled(mean)
			if err != nil {
				return nil, fmt.Errorf("region %q: %w", ent, err)
			}
			if metric == optimize.MetricCost {
				r.Price = p
			} else {
				r.Carbon = p
			}
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -regions")
	}
	return out, nil
}

func load(path string, seed int64) (*dataset.Repository, error) {
	if path == "" {
		return synth.NewRepository(synth.Config{Seed: seed})
	}
	return dataset.ReadPath(path)
}

// sampleServers draws n servers from the dataset. A non-zero seed
// picks a deterministic uniform sample, so the fleet reflects the
// whole dataset rather than whichever rows happen to sort first; seed
// 0 keeps the legacy take-first-n behavior. Either way the selection
// preserves dataset order.
func sampleServers(servers []*dataset.Result, n int, seed int64) []*dataset.Result {
	if len(servers) <= n {
		return servers
	}
	if seed == 0 {
		return servers[:n]
	}
	idx := rand.New(rand.NewSource(seed)).Perm(len(servers))[:n]
	sort.Ints(idx)
	out := make([]*dataset.Result, n)
	for i, j := range idx {
		out[i] = servers[j]
	}
	return out
}

type optConfig struct {
	models, maxPer, step, bins, topK int
	days                             int
	stepSeconds, demand              float64
	objective                        string
	tariff                           trace.Tariff
	seed                             int64
	intensity                        string
	intensityStep                    float64
	rateBins                         int
	embodiedKg, lifetimeYears        float64
	regions                          string
}

// runOptimize searches composition space over the first oc.models
// distinct models of the sampled fleet against a synthetic diurnal
// trace whose mean demand is oc.demand of the largest composition's
// capacity.
func runOptimize(stdout io.Writer, servers []*dataset.Result, oc optConfig) error {
	if oc.models < 1 {
		return fmt.Errorf("need at least one model, got %d", oc.models)
	}
	if oc.models > len(servers) {
		oc.models = len(servers)
	}
	metric, err := optimize.ParseMetric(oc.objective)
	if err != nil {
		return err
	}
	models := make([]*placement.Profile, 0, oc.models)
	var maxCap float64
	for _, r := range servers[:oc.models] {
		p, err := placement.NewProfile(r.ID, r.MustCurve())
		if err != nil {
			return err
		}
		models = append(models, p)
		maxCap += float64(oc.maxPer) * p.MaxOps
	}
	if oc.demand <= 0 || oc.demand > 1 {
		return fmt.Errorf("demand %v outside (0, 1]", oc.demand)
	}
	tr, err := trace.Diurnal(trace.DiurnalConfig{
		Seed: oc.seed, Days: oc.days, StepSeconds: oc.stepSeconds,
		BaseOps: oc.demand * maxCap, DailySwing: 0.4, SpikeProb: 0.002,
	})
	if err != nil {
		return err
	}
	obj, shape, err := oc.buildObjective(metric)
	if err != nil {
		return err
	}
	cfg := optimize.Config{
		Models:      models,
		Trace:       tr,
		Objective:   obj,
		MaxPerModel: oc.maxPer,
		CountStep:   oc.step,
		Bins:        oc.bins,
		RateBins:    oc.rateBins,
		TopK:        oc.topK,
		Seed:        oc.seed,
	}
	if oc.embodiedKg > 0 {
		if oc.lifetimeYears <= 0 {
			return fmt.Errorf("lifetime %v years", oc.lifetimeYears)
		}
		emb := make([]optimize.Embodied, len(models))
		for i := range emb {
			emb[i] = optimize.Embodied{KgCO2e: oc.embodiedKg, LifetimeHours: oc.lifetimeYears * 8766}
		}
		cfg.Embodied = emb
	}
	res, err := optimize.OptimizeComposition(cfg)
	if err != nil {
		return err
	}
	st := tr.Stats()
	fmt.Fprintf(stdout, "composition search: %d models x counts 0-%d (step %d) x %d policies = %d candidates\n",
		len(models), oc.maxPer, oc.step, 4, res.SpaceSize)
	fmt.Fprintf(stdout, "trace: %d days at %.0f s steps, peak %.2fM ops (%d-bin histogram)\n",
		oc.days, oc.stepSeconds, st.PeakOps/1e6, res.Bins)
	if res.Cells > 0 {
		name := "regional"
		if shape != nil {
			name = shape.Name
		}
		fmt.Fprintf(stdout, "rates: time-varying (%s) folded into %d demand×rate cells\n", name, res.Cells)
	}
	mode := "exhaustive"
	if !res.Exhaustive {
		mode = "beam"
	}
	fmt.Fprintf(stdout, "search: %s; %d scored, %d pruned, %d infeasible\n\n",
		mode, res.Evaluated, res.Pruned, res.Infeasible)

	unit := metric.Unit()
	withRegion := res.Best.Region != ""
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	regionCol := ""
	if withRegion {
		regionCol = "\tregion"
	}
	fmt.Fprintf(tw, "rank\tcomposition\tpolicy\tservers\tcapacity (M ops)\tenergy (kWh)\t%s (exact)%s\n", unit, regionCol)
	for i, c := range res.TopK {
		var parts []string
		for m, n := range c.Counts {
			if n > 0 {
				parts = append(parts, fmt.Sprintf("%dx %s", n, models[m].ID))
			}
		}
		if withRegion {
			regionCol = "\t" + c.Region
		}
		fmt.Fprintf(tw, "#%d\t%s\t%s\t%d\t%.2f\t%.1f\t%.4g%s\n",
			i+1, strings.Join(parts, " + "), c.Policy.String(),
			c.Servers, c.CapacityOps/1e6, c.ExactEnergyKWh, c.ExactObjective, regionCol)
	}
	tw.Flush()

	best := res.Best
	if res.Cells > 0 || withRegion || oc.embodiedKg > 0 {
		// Static post-hoc billing would misprice a time-varying rate;
		// the exact objective already carries the per-step accounting
		// (and any embodied amortization).
		where := ""
		if withRegion {
			where = " in " + best.Region
		}
		fmt.Fprintf(stdout, "\noptimum: %.1f kWh IT energy over %d days -> %.4g %s%s\n",
			best.ExactEnergyKWh, oc.days, best.ExactObjective, unit, where)
		return nil
	}
	bill, err := optimize.Objective{Metric: metric, Tariff: oc.tariff}.Bill(best.ExactEnergyKWh)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\noptimum: %.1f kWh IT energy over %d days -> %.1f kWh facility, $%.2f, %.1f kgCO2\n",
		best.ExactEnergyKWh, oc.days, bill.FacilityKWh, bill.USD, bill.KgCO2)
	return nil
}
