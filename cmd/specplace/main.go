// Command specplace plans energy-proportionality-aware workload
// placement for a fleet drawn from a SPECpower dataset: it compares the
// EP-aware strategy against pack-to-full and spread-evenly at a given
// demand, prints the logical clusters (§V.C), and optionally maximizes
// throughput under a power cap.
//
// Usage:
//
//	specplace [-in FILE | -seed N] [-from 2012 -to 2016] [-fleet 40]
//	          [-demand 0.5] [-cap-watts 0] [-power-off]
package main

import (
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/placement"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "specplace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.New("specplace",
		"[-in FILE | -seed N] [-from Y -to Y] [-fleet N] [-demand F] [-cap-watts W]",
		"plans energy-proportionality-aware workload placement for a fleet drawn from a SPECpower dataset", stderr)
	var (
		in       = fs.String("in", "", "dataset file (.csv or .json); empty generates the synthetic corpus")
		seed     = fs.Int64("seed", 1, "seed for the synthetic corpus when -in is empty")
		from     = fs.Int("from", 2011, "earliest hardware availability year for the fleet")
		to       = fs.Int("to", 2016, "latest hardware availability year for the fleet")
		fleetN   = fs.Int("fleet", 40, "fleet size (servers drawn from the dataset)")
		demand   = fs.Float64("demand", 0.5, "workload demand as a fraction of fleet capacity")
		capWatts = fs.Float64("cap-watts", 0, "when > 0, also maximize throughput under this power budget")
		powerOff = fs.Bool("power-off", false, "treat unassigned servers as powered off")
		bandW    = fs.Float64("ep-band", 0.1, "EP band width for logical clustering")
	)
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}
	rp, err := load(*in, *seed)
	if err != nil {
		return err
	}
	servers := rp.Valid().YearRange(*from, *to).All()
	if len(servers) == 0 {
		return fmt.Errorf("no servers in %d-%d", *from, *to)
	}
	if len(servers) > *fleetN {
		servers = servers[:*fleetN]
	}
	fleet := make([]*placement.Profile, 0, len(servers))
	var capacity float64
	for _, r := range servers {
		p, err := placement.NewProfile(r.ID, r.MustCurve())
		if err != nil {
			return err
		}
		fleet = append(fleet, p)
		capacity += p.MaxOps
	}
	opts := placement.Options{IdleServersOff: *powerOff}
	fmt.Fprintf(stdout, "fleet: %d servers (%d-%d), capacity %.2fM ops\n\n",
		len(fleet), *from, *to, capacity/1e6)

	clusters, err := placement.BuildClusters(fleet, *bandW)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "logical clusters (EP band %.2f):\n", *bandW)
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "cluster\tservers\tEP range\toptimal region\tcapacity (M ops)")
	for i, cl := range clusters {
		fmt.Fprintf(tw, "#%d\t%d\t%.2f-%.2f\t%.0f%%-%.0f%%\t%.2f\n",
			i+1, len(cl.Servers), cl.EPLow, cl.EPHigh,
			100*cl.Region.Lo, 100*cl.Region.Hi, cl.Capacity()/1e6)
	}
	tw.Flush()
	fmt.Fprintln(stdout)

	if *demand > 0 {
		demandOps := *demand * capacity
		type strat struct {
			name string
			fn   func([]*placement.Profile, float64, placement.Options) (placement.Plan, error)
		}
		strategies := []strat{
			{"proportional", placement.PlaceProportional},
			{"pack-to-full", placement.PackToFull},
			{"spread-evenly", placement.SpreadEvenly},
		}
		fmt.Fprintf(stdout, "placement at %.0f%% demand (%.2fM ops):\n", 100**demand, demandOps/1e6)
		tw = tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "strategy\tactive\tpower (W)\tfleet EE\tsatisfied")
		for _, s := range strategies {
			plan, err := s.fn(fleet, demandOps, opts)
			if err != nil {
				return fmt.Errorf("%s: %w", s.name, err)
			}
			active := 0
			for _, a := range plan.Assignments {
				if a.Utilization > 0 {
					active++
				}
			}
			fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.1f\t%v\n",
				s.name, active, plan.TotalPower, plan.EE(), plan.Satisfied)
		}
		tw.Flush()
		fmt.Fprintln(stdout)
	}

	if *capWatts > 0 {
		plan, err := placement.MaxThroughputUnderCap(fleet, *capWatts, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "under a %.0f W cap: %.2fM ops at %.1f ops/W (%.0f W drawn)\n",
			*capWatts, plan.TotalOps/1e6, plan.EE(), plan.TotalPower)
	}
	return nil
}

func load(path string, seed int64) (*dataset.Repository, error) {
	if path == "" {
		return synth.NewRepository(synth.Config{Seed: seed})
	}
	return dataset.ReadPath(path)
}
