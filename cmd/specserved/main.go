// Command specserved serves the paper's artifacts — the full report,
// every figure, the EP/EE/correlation metrics, and the corpus listing —
// over HTTP from an immutable snapshot cache. Payloads render at most
// once per snapshot (concurrent identical misses coalesce into a single
// render) and are then served as pre-encoded bytes with ETag
// revalidation and gzip variants; POST /api/v1/reload swaps in a new
// corpus seed atomically without blocking readers.
//
// Usage:
//
//	specserved [-addr :8080] [-seed N] [-in FILE] [-no-sweeps] [-sweep-seconds S] [-workers N]
//	specserved -selftest [-no-sweeps]   # smoke-check + load benchmark over a local listener
//
// Endpoints:
//
//	GET  /healthz
//	GET  /api/v1/report?format=text|html
//	GET  /api/v1/figures                      (index)
//	GET  /api/v1/figures/{id}?format=text|svg
//	GET  /api/v1/metrics/{ep|ee|correlations}
//	GET  /api/v1/servers?year=YYYY&arch=NAME
//	GET  /api/v1/summary
//	POST /api/v1/reload?seed=N
//	GET  /debug/stats
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/serve/loadbench"
	"repro/internal/verify"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "specserved:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.New("specserved",
		"[-addr :8080] [-seed N] [-in FILE] [-no-sweeps] [-sweep-seconds S] [-selftest]",
		"serves the report, figures and metrics over HTTP from a snapshot cache", stderr)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		seed     = fs.Int64("seed", 1, "seed for the synthetic corpus and the report's hardware sweeps")
		in       = fs.String("in", "", "dataset file (.csv or .json); empty generates the synthetic corpus")
		noSweeps = fs.Bool("no-sweeps", false, "serve the report without the Fig. 18-21 hardware-sweep sections")
		sweepSec = fs.Int("sweep-seconds", 30, "simulated measurement interval for report sweeps (SPEC default 240)")
		workers  = fs.Int("workers", 0, "max parallel workers for renders (0 = all cores); output is identical at any count")
		doVerify = fs.Bool("verify", false, "run the structural and metric paper invariants over the snapshot before serving; refuse to start on failure")
		selftest = fs.Bool("selftest", false, "start on a loopback listener, verify the API, run the load benchmark, exit")
		requests = fs.Int("selftest-requests", 2000, "requests per endpoint in the self-test load benchmark")
		clients  = fs.Int("selftest-clients", 8, "concurrent clients in the self-test load benchmark")
	)
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}
	if *workers > 0 {
		defer par.SetMaxWorkers(par.SetMaxWorkers(*workers))
	}

	cfg := serve.Config{Seed: *seed, Sweeps: !*noSweeps, SweepSeconds: *sweepSec}
	if *in != "" {
		rp, err := load(*in)
		if err != nil {
			return err
		}
		cfg.Repo = rp
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	snap := srv.Snapshot()
	fmt.Fprintf(stderr, "specserved: corpus %d submissions (%d valid), seed %d, sweeps %v\n",
		snap.Repo.Len(), snap.Valid.Len(), snap.Seed, snap.Opts.Sweeps)

	synthetic := *in == ""
	if *doVerify {
		if err := verifySnapshot(srv, synthetic, stderr); err != nil {
			return err
		}
	}

	if *selftest {
		return selfTest(srv, synthetic, *requests, *clients, stdout)
	}

	fmt.Fprintf(stderr, "specserved: listening on %s\n", *addr)
	return http.ListenAndServe(*addr, srv.Handler())
}

// verifySnapshot runs the fast invariant categories (structural and
// metric — the differential ones re-render reports and belong to
// specverify) over the server's current snapshot, so a bad corpus is
// refused at startup and a reload can be re-checked live.
func verifySnapshot(srv *serve.Server, synthetic bool, out io.Writer) error {
	snap := srv.Snapshot()
	ctx := verify.SnapshotContext(snap, synthetic)
	rep := verify.Run(ctx, verify.Structural, verify.Metric)
	run, _, failed, _ := rep.Counts()
	if !rep.OK() {
		fmt.Fprint(out, rep.String())
		return fmt.Errorf("snapshot failed %d of %d paper invariants: %s",
			failed, run, strings.Join(rep.FailureNames(), ", "))
	}
	fmt.Fprintf(out, "specserved: snapshot passed %d paper invariants (seed %d)\n", run, snap.Seed)
	return nil
}

// selfTest starts the server on a loopback listener, verifies the API
// surface end to end (byte-identity with the library render, ETag
// revalidation, figure and metric endpoints), then load-benchmarks the
// cold-miss and warm-hit paths and prints the numbers.
func selfTest(srv *serve.Server, synthetic bool, requests, clients int, out io.Writer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 5 * time.Minute}

	// 1. Liveness.
	if err := expectBody(client, base+"/healthz", "ok\n"); err != nil {
		return fmt.Errorf("selftest healthz: %w", err)
	}

	// 2. Cold miss: the first report request renders; time it and pin
	// byte-identity against the library render (what specreport prints
	// for the same corpus, seed and options).
	snap := srv.Snapshot()
	want, err := report.Full(snap.Valid, snap.Opts)
	if err != nil {
		return fmt.Errorf("selftest render: %w", err)
	}
	t0 := time.Now()
	resp, err := client.Get(base + "/api/v1/report")
	if err != nil {
		return fmt.Errorf("selftest report: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	cold := time.Since(t0)
	if err != nil {
		return fmt.Errorf("selftest report: %w", err)
	}
	if string(body) != want {
		return fmt.Errorf("selftest: served report (%d bytes) differs from library render (%d bytes)", len(body), len(want))
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		return fmt.Errorf("selftest: report response has no ETag")
	}
	fmt.Fprintf(out, "report: %d bytes, byte-identical to report.Full, cold miss %s\n", len(body), cold.Round(time.Millisecond))

	// 3. Revalidation: a matching If-None-Match must 304 with no body.
	req, _ := http.NewRequest(http.MethodGet, base+"/api/v1/report", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = client.Do(req)
	if err != nil {
		return fmt.Errorf("selftest revalidate: %w", err)
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || n != 0 {
		return fmt.Errorf("selftest: revalidation gave %d with %d body bytes, want 304 with 0", resp.StatusCode, n)
	}
	fmt.Fprintln(out, "etag: revalidation returns 304 with empty body")

	// 4. Every figure in both advertised forms, plus the metric and
	// listing endpoints.
	for _, id := range report.FigureIDs() {
		if err := expectOK(client, base+"/api/v1/figures/"+id); err != nil {
			return fmt.Errorf("selftest figure %s: %w", id, err)
		}
		if report.FigureHasSVG(id) {
			if err := expectOK(client, base+"/api/v1/figures/"+id+"?format=svg"); err != nil {
				return fmt.Errorf("selftest figure %s svg: %w", id, err)
			}
		}
	}
	for _, p := range []string{"/api/v1/figures", "/api/v1/metrics/ep", "/api/v1/metrics/ee",
		"/api/v1/metrics/correlations", "/api/v1/servers?year=2016", "/api/v1/summary", "/debug/stats"} {
		if err := expectOK(client, base+p); err != nil {
			return fmt.Errorf("selftest %s: %w", p, err)
		}
	}
	fmt.Fprintf(out, "figures: %d selectors serve text (chart-backed ones serve SVG)\n", len(report.FigureIDs()))

	// 5. Reload at the same seed over HTTP, then re-run the paper
	// invariants against the live snapshot the swap installed: the
	// served corpus must satisfy them after every reload, and the
	// stable ETag proves the regenerated payload is byte-identical.
	resp, err = client.Post(base+fmt.Sprintf("/api/v1/reload?seed=%d", snap.Seed), "", nil)
	if err != nil {
		return fmt.Errorf("selftest reload: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selftest reload: status %d", resp.StatusCode)
	}
	if err := verifySnapshot(srv, synthetic, out); err != nil {
		return fmt.Errorf("selftest after reload: %w", err)
	}
	req, _ = http.NewRequest(http.MethodGet, base+"/api/v1/report", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = client.Do(req)
	if err != nil {
		return fmt.Errorf("selftest reload revalidate: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		return fmt.Errorf("selftest: pre-reload ETag gave %d after same-seed reload, want 304", resp.StatusCode)
	}
	fmt.Fprintln(out, "reload: snapshot re-verified, pre-reload ETag still valid")

	// 6. Load benchmark: warm-hit throughput on the heavy and light
	// paths, plus the 304 revalidation path.
	fmt.Fprintf(out, "loadbench: %d requests x %d clients per endpoint\n", requests, clients)
	runs := []loadbench.Options{
		{Path: "/api/v1/report", Requests: requests, Concurrency: clients},
		{Path: "/api/v1/report", Requests: requests, Concurrency: clients,
			Header: http.Header{"If-None-Match": {etag}}, WantStatus: http.StatusNotModified},
		{Path: "/api/v1/metrics/ep", Requests: requests, Concurrency: clients},
		{Path: "/api/v1/figures/3?format=svg", Requests: requests, Concurrency: clients},
		{Path: "/healthz", Requests: requests, Concurrency: clients},
	}
	for _, opt := range runs {
		res, err := loadbench.Run(client, base, opt)
		if err != nil {
			return fmt.Errorf("selftest loadbench: %w", err)
		}
		if opt.WantStatus == http.StatusNotModified {
			res.Path += " (304)"
		}
		fmt.Fprintln(out, res.String())
	}
	fmt.Fprintln(out, "selftest: ok")
	return nil
}

// expectOK issues one GET and requires a 200.
func expectOK(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// expectBody issues one GET and requires a 200 with the exact body.
func expectBody(client *http.Client, url, want string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK || string(body) != want {
		return fmt.Errorf("status %d body %q, want 200 %q", resp.StatusCode, body, want)
	}
	return nil
}

// load reads a dataset file (CSV, JSON, or EPFB), mirroring the other
// CLIs through the shared dataset.ReadPath dispatcher.
func load(path string) (*dataset.Repository, error) {
	return dataset.ReadPath(path)
}
