// Command specserved serves the paper's artifacts — the full report,
// every figure, the EP/EE/correlation metrics, and the corpus listing —
// over HTTP from an immutable snapshot cache. Payloads render at most
// once per snapshot (concurrent identical misses coalesce into a single
// render) and are then served as pre-encoded bytes with ETag
// revalidation and gzip variants; POST /api/v1/reload swaps in a new
// corpus seed atomically without blocking readers.
//
// Synthetic servers also serve keyed scenarios: ?seed=N&servers=M on
// any cached endpoint addresses a generated corpus held in an
// LRU-bounded workspace (loads coalesce; evicted scenarios reload
// byte-identically). GET /metrics exposes corpus-, fleet- and
// serve-level gauges and counters as OpenMetrics, one corpus label per
// resident scenario.
//
// Usage:
//
//	specserved [-addr :8080] [-seed N] [-in FILE] [-no-sweeps] [-sweep-seconds S] [-workers N] [-workspace N]
//	specserved -selftest [-no-sweeps]   # smoke-check + load benchmark over a local listener
//
// Endpoints:
//
//	GET  /healthz
//	GET  /api/v1/report?format=text|html
//	GET  /api/v1/figures                      (index)
//	GET  /api/v1/figures/{id}?format=text|svg
//	GET  /api/v1/metrics/{ep|ee|correlations}
//	GET  /api/v1/servers?year=YYYY&arch=NAME
//	GET  /api/v1/summary
//	POST /api/v1/reload?seed=N
//	GET  /metrics                             (OpenMetrics exposition)
//	GET  /debug/stats
//
// Cached GET endpoints additionally accept ?seed=N and ?servers=M
// (synthetic servers only) to address workspace scenarios.
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/serve/loadbench"
	"repro/internal/verify"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "specserved:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.New("specserved",
		"[-addr :8080] [-seed N] [-in FILE] [-no-sweeps] [-sweep-seconds S] [-selftest]",
		"serves the report, figures and metrics over HTTP from a snapshot cache", stderr)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		seed     = fs.Int64("seed", 1, "seed for the synthetic corpus and the report's hardware sweeps")
		in       = fs.String("in", "", "dataset file (.csv or .json); empty generates the synthetic corpus")
		noSweeps = fs.Bool("no-sweeps", false, "serve the report without the Fig. 18-21 hardware-sweep sections")
		sweepSec = fs.Int("sweep-seconds", 30, "simulated measurement interval for report sweeps (SPEC default 240)")
		workers  = fs.Int("workers", 0, "max parallel workers for renders (0 = all cores); output is identical at any count")
		wsCap    = fs.Int("workspace", 0, "max resident keyed corpus scenarios (LRU-bounded; 0 = default 8)")
		doVerify = fs.Bool("verify", false, "run the structural and metric paper invariants over the snapshot before serving; refuse to start on failure")
		selftest = fs.Bool("selftest", false, "start on a loopback listener, verify the API, run the load benchmark, exit")
		requests = fs.Int("selftest-requests", 2000, "requests per endpoint in the self-test load benchmark")
		clients  = fs.Int("selftest-clients", 8, "concurrent clients in the self-test load benchmark")
	)
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}
	if *workers > 0 {
		defer par.SetMaxWorkers(par.SetMaxWorkers(*workers))
	}

	cfg := serve.Config{Seed: *seed, Sweeps: !*noSweeps, SweepSeconds: *sweepSec, WorkspaceCap: *wsCap}
	if *in != "" {
		rp, err := load(*in)
		if err != nil {
			return err
		}
		cfg.Repo = rp
		// File-backed corpora carry their dataset name as the corpus
		// label instead of the synthetic "seed=N".
		cfg.CorpusName = filepath.Base(*in)
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	snap := srv.Snapshot()
	fmt.Fprintf(stderr, "specserved: corpus %d submissions (%d valid), seed %d, sweeps %v\n",
		snap.Repo.Len(), snap.Valid.Len(), snap.Seed, snap.Opts.Sweeps)

	synthetic := *in == ""
	if *doVerify {
		if err := verifySnapshot(srv, synthetic, stderr); err != nil {
			return err
		}
	}

	if *selftest {
		return selfTest(srv, synthetic, *requests, *clients, stdout)
	}

	fmt.Fprintf(stderr, "specserved: listening on %s\n", *addr)
	return http.ListenAndServe(*addr, srv.Handler())
}

// verifySnapshot runs the fast invariant categories (structural and
// metric — the differential ones re-render reports and belong to
// specverify) over the server's current snapshot, so a bad corpus is
// refused at startup and a reload can be re-checked live.
func verifySnapshot(srv *serve.Server, synthetic bool, out io.Writer) error {
	snap := srv.Snapshot()
	ctx := verify.SnapshotContext(snap, synthetic)
	rep := verify.Run(ctx, verify.Structural, verify.Metric)
	run, _, failed, _ := rep.Counts()
	if !rep.OK() {
		fmt.Fprint(out, rep.String())
		return fmt.Errorf("snapshot failed %d of %d paper invariants: %s",
			failed, run, strings.Join(rep.FailureNames(), ", "))
	}
	fmt.Fprintf(out, "specserved: snapshot passed %d paper invariants (seed %d)\n", run, snap.Seed)
	return nil
}

// selfTest starts the server on a loopback listener, verifies the API
// surface end to end (byte-identity with the library render, ETag
// revalidation, figure and metric endpoints), then load-benchmarks the
// cold-miss and warm-hit paths and prints the numbers.
func selfTest(srv *serve.Server, synthetic bool, requests, clients int, out io.Writer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 5 * time.Minute}

	// 1. Liveness.
	if err := expectBody(client, base+"/healthz", "ok\n"); err != nil {
		return fmt.Errorf("selftest healthz: %w", err)
	}

	// 2. Cold miss: the first report request renders; time it and pin
	// byte-identity against the library render (what specreport prints
	// for the same corpus, seed and options).
	snap := srv.Snapshot()
	want, err := report.Full(snap.Valid, snap.Opts)
	if err != nil {
		return fmt.Errorf("selftest render: %w", err)
	}
	t0 := time.Now()
	resp, err := client.Get(base + "/api/v1/report")
	if err != nil {
		return fmt.Errorf("selftest report: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	cold := time.Since(t0)
	if err != nil {
		return fmt.Errorf("selftest report: %w", err)
	}
	if string(body) != want {
		return fmt.Errorf("selftest: served report (%d bytes) differs from library render (%d bytes)", len(body), len(want))
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		return fmt.Errorf("selftest: report response has no ETag")
	}
	fmt.Fprintf(out, "report: %d bytes, byte-identical to report.Full, cold miss %s\n", len(body), cold.Round(time.Millisecond))

	// 3. Revalidation: a matching If-None-Match must 304 with no body.
	req, _ := http.NewRequest(http.MethodGet, base+"/api/v1/report", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = client.Do(req)
	if err != nil {
		return fmt.Errorf("selftest revalidate: %w", err)
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || n != 0 {
		return fmt.Errorf("selftest: revalidation gave %d with %d body bytes, want 304 with 0", resp.StatusCode, n)
	}
	fmt.Fprintln(out, "etag: revalidation returns 304 with empty body")

	// 4. Every figure in both advertised forms, plus the metric and
	// listing endpoints.
	for _, id := range report.FigureIDs() {
		if err := expectOK(client, base+"/api/v1/figures/"+id); err != nil {
			return fmt.Errorf("selftest figure %s: %w", id, err)
		}
		if report.FigureHasSVG(id) {
			if err := expectOK(client, base+"/api/v1/figures/"+id+"?format=svg"); err != nil {
				return fmt.Errorf("selftest figure %s svg: %w", id, err)
			}
		}
	}
	for _, p := range []string{"/api/v1/figures", "/api/v1/metrics/ep", "/api/v1/metrics/ee",
		"/api/v1/metrics/correlations", "/api/v1/servers?year=2016", "/api/v1/summary", "/debug/stats"} {
		if err := expectOK(client, base+p); err != nil {
			return fmt.Errorf("selftest %s: %w", p, err)
		}
	}
	fmt.Fprintf(out, "figures: %d selectors serve text (chart-backed ones serve SVG)\n", len(report.FigureIDs()))

	// 5. Reload at the same seed over HTTP, then re-run the paper
	// invariants against the live snapshot the swap installed: the
	// served corpus must satisfy them after every reload, and the
	// stable ETag proves the regenerated payload is byte-identical.
	resp, err = client.Post(base+fmt.Sprintf("/api/v1/reload?seed=%d", snap.Seed), "", nil)
	if err != nil {
		return fmt.Errorf("selftest reload: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selftest reload: status %d", resp.StatusCode)
	}
	if err := verifySnapshot(srv, synthetic, out); err != nil {
		return fmt.Errorf("selftest after reload: %w", err)
	}
	req, _ = http.NewRequest(http.MethodGet, base+"/api/v1/report", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = client.Do(req)
	if err != nil {
		return fmt.Errorf("selftest reload revalidate: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		return fmt.Errorf("selftest: pre-reload ETag gave %d after same-seed reload, want 304", resp.StatusCode)
	}
	fmt.Fprintln(out, "reload: snapshot re-verified, pre-reload ETag still valid")

	// 6. OpenMetrics: every scrape must lint (the strict internal
	// parser is the openmetrics-lint equivalent), cover the corpus,
	// fleet and serve family groups, and — once the per-snapshot gauges
	// are memoized — answer warm in about a millisecond.
	if err := checkScrape(srv, client, base, synthetic, out); err != nil {
		return fmt.Errorf("selftest metrics: %w", err)
	}

	// 7. Load benchmark: warm-hit throughput on the heavy and light
	// paths, the 304 revalidation path, the scrape path, and (on
	// synthetic servers) a mixed-key workload spanning the default
	// corpus, two workspace scenarios and the exposition.
	fmt.Fprintf(out, "loadbench: %d requests x %d clients per endpoint\n", requests, clients)
	lintScrape := func(status int, body []byte) error {
		_, err := metrics.Parse(body)
		return err
	}
	runs := []loadbench.Options{
		{Path: "/api/v1/report", Requests: requests, Concurrency: clients},
		{Path: "/api/v1/report", Requests: requests, Concurrency: clients,
			Header: http.Header{"If-None-Match": {etag}}, WantStatus: http.StatusNotModified},
		{Path: "/api/v1/metrics/ep", Requests: requests, Concurrency: clients},
		{Path: "/api/v1/figures/3?format=svg", Requests: requests, Concurrency: clients},
		{Path: "/metrics", Requests: requests, Concurrency: clients, Check: lintScrape},
		{Path: "/healthz", Requests: requests, Concurrency: clients},
	}
	if synthetic {
		runs = append(runs, loadbench.Options{
			Path: "mixed-keys", Requests: requests, Concurrency: clients,
			Paths: []string{
				"/api/v1/summary",
				fmt.Sprintf("/api/v1/summary?seed=%d&servers=64", srv.Snapshot().Seed),
				fmt.Sprintf("/api/v1/metrics/ep?seed=%d&servers=96", srv.Snapshot().Seed),
				"/metrics",
			},
		})
	}
	for _, opt := range runs {
		res, err := loadbench.Run(client, base, opt)
		if err != nil {
			return fmt.Errorf("selftest loadbench: %w", err)
		}
		if opt.WantStatus == http.StatusNotModified {
			res.Path += " (304)"
		}
		fmt.Fprintln(out, res.String())
	}
	fmt.Fprintln(out, "selftest: ok")
	return nil
}

// checkScrape lints the /metrics exposition with the strict internal
// OpenMetrics parser, asserts the family groups the PR 9 contract
// names, exercises a keyed scenario (synthetic servers), and measures
// warm-scrape latency.
func checkScrape(srv *serve.Server, client *http.Client, base string, synthetic bool, out io.Writer) error {
	if synthetic {
		// Load one keyed scenario first so the scrape spans two corpora.
		if err := expectOK(client, base+fmt.Sprintf("/api/v1/summary?seed=%d&servers=64", srv.Snapshot().Seed)); err != nil {
			return fmt.Errorf("keyed summary: %w", err)
		}
	}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape: status %d, read err %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		return fmt.Errorf("scrape Content-Type %q", ct)
	}
	fams, err := metrics.Parse(body)
	if err != nil {
		return fmt.Errorf("exposition does not lint: %w", err)
	}
	for _, name := range []string{
		"spec_corpus_servers", "spec_corpus_ep", "spec_corpus_idle_fraction",
		"spec_fleet_ep", "spec_fleet_power_watts", "spec_fleet_active_servers",
		"spec_carbon_intensity_kg_per_kwh", "spec_fleet_carbon_rate_kg_per_hour",
		"spec_fleet_embodied_carbon_rate_kg_per_hour",
		"spec_serve_requests", "spec_serve_response_cache_entries",
		"spec_workspace_resident", "spec_serve_reload_generation",
	} {
		if metrics.Find(fams, name) == nil {
			return fmt.Errorf("exposition lacks family %s", name)
		}
	}
	corpora := map[string]bool{}
	for _, smp := range metrics.Find(fams, "spec_corpus_servers").Samples {
		for _, l := range smp.Labels {
			if l.Name == "corpus" {
				corpora[l.Value] = true
			}
		}
	}
	if synthetic && len(corpora) < 2 {
		return fmt.Errorf("scrape covers %d corpora, want the default plus the keyed scenario", len(corpora))
	}

	// Warm-scrape latency: every snapshot's gauges are memoized by now,
	// so take the best of a few runs as the steady-state number.
	warm := time.Duration(1 << 62)
	for i := 0; i < 20; i++ {
		t0 := time.Now()
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if d := time.Since(t0); d < warm {
			warm = d
		}
	}
	fmt.Fprintf(out, "metrics: %d families over %d corpora lint clean, warm scrape %s\n",
		len(fams), len(corpora), warm.Round(time.Microsecond))
	if warm > 5*time.Millisecond {
		return fmt.Errorf("warm scrape took %s, want about a millisecond", warm)
	}
	return nil
}

// expectOK issues one GET and requires a 200.
func expectOK(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// expectBody issues one GET and requires a 200 with the exact body.
func expectBody(client *http.Client, url, want string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK || string(body) != want {
		return fmt.Errorf("status %d body %q, want 200 %q", resp.StatusCode, body, want)
	}
	return nil
}

// load reads a dataset file (CSV, JSON, or EPFB), mirroring the other
// CLIs through the shared dataset.ReadPath dispatcher.
func load(path string) (*dataset.Repository, error) {
	return dataset.ReadPath(path)
}
