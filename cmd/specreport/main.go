// Command specreport regenerates the paper's complete evaluation
// section — every figure, table, and headline statistic — over the
// synthetic corpus (or a dataset file), including the simulated
// hardware experiments of Fig. 18-21.
//
// Usage:
//
//	specreport [-seed N] [-in FILE] [-no-sweeps] [-sweep-seconds S] [-workers N] [-out FILE]
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "specreport:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.New("specreport",
		"[-seed N] [-in FILE] [-format text|html] [-no-sweeps] [-workers N] [-out FILE]",
		"regenerates the paper's complete evaluation section: every figure, table and headline statistic", stderr)
	var (
		seed     = fs.Int64("seed", 1, "seed for the synthetic corpus and sweeps")
		in       = fs.String("in", "", "dataset file (.csv or .json); empty generates the synthetic corpus")
		noSweeps = fs.Bool("no-sweeps", false, "skip the Fig. 18-21 hardware-experiment simulations")
		sweepSec = fs.Int("sweep-seconds", 30, "simulated measurement interval for sweeps (SPEC default 240)")
		format   = fs.String("format", "text", "output format: text or html (html embeds SVG figures)")
		out      = fs.String("out", "", "output file (default stdout)")
		workers  = fs.Int("workers", 0, "max parallel workers for sections and sweep cells (0 = all cores); output is identical at any count")
	)
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}
	if *workers > 0 {
		defer par.SetMaxWorkers(par.SetMaxWorkers(*workers))
	}

	var (
		rp  *dataset.Repository
		err error
	)
	if *in == "" {
		rp, err = synth.NewRepository(synth.Config{Seed: *seed})
	} else {
		rp, err = load(*in)
	}
	if err != nil {
		return err
	}
	fmt.Fprint(stderr, report.Summary(rp))

	ropts := report.Options{
		Sweeps:       !*noSweeps,
		SweepSeconds: *sweepSec,
		Seed:         *seed,
	}
	var text string
	switch *format {
	case "text":
		text, err = report.Full(rp.Valid(), ropts)
	case "html":
		text, err = report.FullHTML(rp.Valid(), ropts)
	default:
		return fmt.Errorf("unknown format %q (want text or html)", *format)
	}
	if err != nil {
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	_, err = io.WriteString(w, text)
	return err
}

func load(path string) (*dataset.Repository, error) {
	return dataset.ReadPath(path)
}
