package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunNoSweeps(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-no-sweeps"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Fig.1", "Fig.17", "Table II", "Eq.2", "Fig.E5"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(s, "Fig.18") {
		t.Error("-no-sweeps still ran sweeps")
	}
}

func TestRunWithSweepsToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-sweep-seconds", "5", "-out", path}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig.18", "Fig.19", "Fig.20", "Fig.21"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report file missing %q", want)
		}
	}
}

func TestRunMissingInput(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", "/nope.csv"}, &out, &errBuf); err == nil {
		t.Error("missing input accepted")
	}
}

func TestRunHTMLFormat(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-no-sweeps", "-format", "html"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "<!DOCTYPE html>") {
		t.Error("html format did not produce HTML")
	}
	if err := run([]string{"-format", "pdf"}, &out, &errBuf); err == nil {
		t.Error("unknown format accepted")
	}
}
