// Command specgen generates the calibrated synthetic SPECpower corpus
// (517 submissions, 477 valid) and writes it as CSV or JSON.
//
// Usage:
//
//	specgen [-seed N] [-format csv|json] [-valid-only] [-out FILE]
package main

import (
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/report"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "specgen:", err)
		os.Exit(1)
	}
}

// runVerify prints the calibration table and fails on any regression.
func runVerify(rp *dataset.Repository, w io.Writer) error {
	checks, err := synth.CalibrationCheck(rp)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "check\tpaper\tmeasured\tstatus")
	failed := 0
	for _, c := range checks {
		status := "ok"
		if !c.OK {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", c.Name, c.Paper, c.Got, status)
	}
	tw.Flush()
	if failed > 0 {
		return fmt.Errorf("%d calibration checks failed", failed)
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.New("specgen",
		"[-seed N] [-format csv|json] [-valid-only] [-out FILE] [-verify]",
		"generates the calibrated synthetic SPECpower corpus (517 submissions, 477 valid) as CSV or JSON", stderr)
	var (
		seed      = fs.Int64("seed", 1, "generator seed; equal seeds reproduce the corpus bit for bit")
		format    = fs.String("format", "csv", "output format: csv or json")
		validOnly = fs.Bool("valid-only", false, "emit only the 477 compliant results")
		out       = fs.String("out", "", "output file (default stdout)")
		quiet     = fs.Bool("q", false, "suppress the summary line on stderr")
		verify    = fs.Bool("verify", false, "print the calibration check against the paper's targets and exit non-zero on failure")
	)
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}

	rp, err := synth.NewRepository(synth.Config{Seed: *seed})
	if err != nil {
		return err
	}
	if *verify {
		return runVerify(rp, stdout)
	}
	results := rp.All()
	if *validOnly {
		results = rp.Valid().All()
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	switch *format {
	case "csv":
		err = dataset.WriteCSV(w, results)
	case "json":
		err = dataset.WriteJSON(w, results)
	default:
		return fmt.Errorf("unknown format %q (want csv or json)", *format)
	}
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprint(stderr, report.Summary(rp))
	}
	return nil
}
