// Command specgen generates the calibrated synthetic SPECpower corpus
// (517 submissions, 477 valid) and writes it as CSV or JSON.
//
// Usage:
//
//	specgen [-seed N] [-format csv|json] [-valid-only] [-out FILE]
package main

import (
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/report"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "specgen:", err)
		os.Exit(1)
	}
}

// runVerify prints the calibration table and fails on any regression.
func runVerify(rp *dataset.Repository, w io.Writer) error {
	checks, err := synth.CalibrationCheck(rp)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "check\tpaper\tmeasured\tstatus")
	failed := 0
	for _, c := range checks {
		status := "ok"
		if !c.OK {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", c.Name, c.Paper, c.Got, status)
	}
	tw.Flush()
	if failed > 0 {
		return fmt.Errorf("%d calibration checks failed", failed)
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.New("specgen",
		"[-seed N] [-servers N] [-format csv|json|epfb] [-valid-only] [-out FILE] [-verify]",
		"generates the calibrated synthetic SPECpower corpus (517 submissions, 477 valid) — or, with -servers, a fleet-scale corpus — as CSV, JSON, or binary EPFB", stderr)
	var (
		seed      = fs.Int64("seed", 1, "generator seed; equal seeds reproduce the corpus bit for bit")
		servers   = fs.Int("servers", 0, "fleet mode: generate N servers from the calibrated plan tables and stream them shard by shard (0 = the paper's 517-submission corpus)")
		format    = fs.String("format", "csv", "output format: csv, json, or epfb (columnar binary)")
		validOnly = fs.Bool("valid-only", false, "emit only the 477 compliant results (corpus mode only)")
		out       = fs.String("out", "", "output file (default stdout)")
		quiet     = fs.Bool("q", false, "suppress the summary line on stderr")
		verify    = fs.Bool("verify", false, "print the calibration check against the paper's targets and exit non-zero on failure")
	)
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}
	switch *format {
	case "csv", "json", "epfb":
	default:
		return fmt.Errorf("unknown format %q (want csv, json, or epfb)", *format)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}

	if *servers > 0 {
		if *verify || *validOnly {
			return fmt.Errorf("-servers is incompatible with -verify and -valid-only")
		}
		if err := writeFleet(w, *seed, *servers, *format); err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(stderr, "fleet: %d servers (seed %d, %s)\n", *servers, *seed, *format)
		}
		return nil
	}

	rp, err := synth.NewRepository(synth.Config{Seed: *seed})
	if err != nil {
		return err
	}
	if *verify {
		return runVerify(rp, stdout)
	}
	results := rp.All()
	if *validOnly {
		results = rp.Valid().All()
	}

	switch *format {
	case "csv":
		err = dataset.WriteCSV(w, results)
	case "json":
		err = dataset.WriteJSON(w, results)
	case "epfb":
		err = dataset.WriteColumns(w, dataset.BuildColumns(results))
	}
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprint(stderr, report.Summary(rp))
	}
	return nil
}

// writeFleet streams a -servers fleet to w shard by shard: the fleet
// never exists in memory at once, so the output size is bounded only
// by disk. The bytes equal a one-shot encode of GenerateFleet's output
// in every format.
func writeFleet(w io.Writer, seed int64, servers int, format string) error {
	cfg := synth.FleetConfig{Seed: seed, Servers: servers}
	switch format {
	case "epfb":
		cw, err := dataset.NewColumnWriter(w)
		if err != nil {
			return err
		}
		if err := synth.GenerateFleetShards(cfg, func(_ int, cs *dataset.ColumnStore) error {
			return cw.WriteChunk(cs)
		}); err != nil {
			return err
		}
		return cw.Flush()
	case "csv":
		sw := dataset.NewCSVWriter(w)
		if err := synth.GenerateFleetShards(cfg, func(_ int, cs *dataset.ColumnStore) error {
			return sw.Append(cs.Materialize())
		}); err != nil {
			return err
		}
		return sw.Flush()
	case "json":
		jw := dataset.NewJSONWriter(w)
		if err := synth.GenerateFleetShards(cfg, func(_ int, cs *dataset.ColumnStore) error {
			return jw.Append(cs.Materialize())
		}); err != nil {
			return err
		}
		return jw.Close()
	}
	return fmt.Errorf("unknown format %q", format)
}
