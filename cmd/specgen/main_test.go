package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestRunCSVToStdout(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-seed", "3"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	results, err := dataset.ReadCSV(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 517 {
		t.Errorf("emitted %d results", len(results))
	}
	if !strings.Contains(errBuf.String(), "517 submissions") {
		t.Errorf("summary missing: %q", errBuf.String())
	}
}

func TestRunValidOnlyJSONToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.json")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-seed", "3", "-format", "json", "-valid-only", "-q", "-out", path}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Error("file mode should not write stdout")
	}
	if errBuf.Len() != 0 {
		t.Error("-q should suppress the summary")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	results, err := dataset.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 477 {
		t.Errorf("valid-only emitted %d", len(results))
	}
}

func TestRunRejectsBadFormat(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-format", "xml"}, &out, &errBuf); err == nil {
		t.Error("bad format accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b, errBuf bytes.Buffer
	if err := run([]string{"-seed", "5", "-q"}, &a, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "5", "-q"}, &b, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed produced different output")
	}
}

func TestRunVerify(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-seed", "1", "-verify", "-q"}, &out, &errBuf); err != nil {
		t.Fatalf("calibration verify failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"check", "Table I histogram", "Eq.2 R²", "ok"} {
		if !strings.Contains(s, want) {
			t.Errorf("verify output missing %q", want)
		}
	}
	if strings.Contains(s, "FAIL") {
		t.Errorf("verify reported failures:\n%s", s)
	}
}
