// Command specbench runs the simulated SPECpower_ssj2008 benchmark on a
// modeled server: a single run under one governor and memory
// configuration, or the paper's full memory-per-core × frequency sweep
// (Fig. 18-21).
//
// Usage:
//
//	specbench -server 4                 # sweep server #4 (Fig. 20/21)
//	specbench -server 2 -single -governor ondemand -memory 16
package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"text/tabwriter"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "specbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.New("specbench",
		"[-server 1-4] [-seed N] [-single] [-governor G] [-memory GB] [-repeat N]",
		"runs the simulated SPECpower_ssj2008 benchmark on a modeled server: one run or the full memory x frequency sweep", stderr)
	var (
		serverNo = fs.Int("server", 4, "Table II server to test (1-4)")
		seed     = fs.Int64("seed", 1, "simulation seed")
		interval = fs.Int("interval", 60, "measurement interval seconds (SPEC default 240)")
		single   = fs.Bool("single", false, "run one benchmark instead of the sweep")
		governor = fs.String("governor", "performance", "governor for -single: performance, ondemand, powersave, or a frequency like 2.1")
		memoryGB = fs.Int("memory", 0, "installed memory GB for -single (0 = as configured)")
		repeatN  = fs.Int("repeat", 0, "with -single: run N times and report run-to-run repeatability")
		fidelity = fs.String("fidelity", "fast", "simulation fidelity for -single: fast or tx (transaction-level with latency)")
		nodes    = fs.Int("nodes", 1, "with -single: run N identical nodes as a multi-node test")
		workers  = fs.Int("workers", 0, "max parallel workers for sweep cells and repeats (0 = all cores); output is identical at any count")
	)
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}
	if *workers > 0 {
		defer par.SetMaxWorkers(par.SetMaxWorkers(*workers))
	}
	servers := power.TableIIServers()
	if *serverNo < 1 || *serverNo > len(servers) {
		return fmt.Errorf("server %d out of range 1-%d", *serverNo, len(servers))
	}
	srv := servers[*serverNo-1]

	if *single {
		fid := bench.FidelityFast
		switch *fidelity {
		case "fast":
		case "tx":
			fid = bench.FidelityTransaction
		default:
			return fmt.Errorf("unknown fidelity %q (want fast or tx)", *fidelity)
		}
		if *repeatN > 1 {
			return runRepeat(stdout, srv, *governor, *memoryGB, *seed, *interval, *repeatN)
		}
		return runSingle(stdout, srv, *governor, *memoryGB, *seed, *interval, fid, *nodes)
	}
	pts, err := bench.SweepWith(srv, bench.PaperMemoryConfigs(srv), bench.AllFrequencyGovernors(srv),
		bench.SweepOptions{Seed: *seed, IntervalSeconds: *interval})
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Memory-per-core × frequency sweep on #%d (%s)", *serverNo, srv.Name)
	fmt.Fprintln(stdout, report.SweepFigure(title, pts))
	if *serverNo == 4 {
		fmt.Fprintln(stdout, report.Fig21PowerAndEE(pts))
	}
	return nil
}

// runRepeat reports the run-to-run repeatability of one configuration.
func runRepeat(w io.Writer, srv power.ServerConfig, governor string, memoryGB int, seed int64, interval, n int) error {
	gov, err := parseGovernor(governor)
	if err != nil {
		return err
	}
	if memoryGB > 0 {
		srv, err = srv.WithMemory(memoryGB, srv.DIMMs[0].SizeGB)
		if err != nil {
			return err
		}
	}
	rep, err := bench.Repeat(bench.Config{
		Server:          srv,
		Governor:        gov,
		Seed:            seed,
		IntervalSeconds: interval,
	}, n)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s — %d runs under governor %s\n", srv.Name, rep.Runs, gov.Name())
	fmt.Fprintf(w, "overall EE: mean %.1f (95%% CI %.1f-%.1f), median %.1f, spread %.2f%%\n",
		rep.OverallEE.Mean, rep.CILow, rep.CIHigh, rep.OverallEE.Median, 100*rep.SpreadFrac)
	return nil
}

func runSingle(w io.Writer, srv power.ServerConfig, governor string, memoryGB int, seed int64, interval int, fid bench.Fidelity, nodes int) error {
	gov, err := parseGovernor(governor)
	if err != nil {
		return err
	}
	if memoryGB > 0 {
		srv, err = srv.WithMemory(memoryGB, srv.DIMMs[0].SizeGB)
		if err != nil {
			return err
		}
	}
	runner, err := bench.NewRunner(bench.Config{
		Server:          srv,
		Governor:        gov,
		Seed:            seed,
		IntervalSeconds: interval,
		Fidelity:        fid,
		Nodes:           nodes,
	})
	if err != nil {
		return err
	}
	res, err := runner.Run()
	if err != nil {
		return err
	}
	nodeNote := ""
	if res.Nodes > 1 {
		nodeNote = fmt.Sprintf(", %d nodes", res.Nodes)
	}
	fmt.Fprintf(w, "%s — governor %s (busy %.2f GHz), %d GB memory (%.2f GB/core)%s\n",
		srv.Name, res.Governor, res.BusyFreqGHz, int(srv.MemoryGB()), srv.MemoryPerCore(), nodeNote)
	fmt.Fprintf(w, "calibrated throughput: %.0f ssj_ops\n\n", res.CalibratedOps)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if fid == bench.FidelityTransaction {
		fmt.Fprintln(tw, "target load\tssj_ops\tavg power (W)\tEE (ops/W)\tp50 (ms)\tp99 (ms)")
		for i := len(res.Levels) - 1; i >= 0; i-- {
			lv := res.Levels[i]
			fmt.Fprintf(tw, "%.0f%%\t%.0f\t%.1f\t%.1f\t%.2f\t%.2f\n",
				100*lv.TargetLoad, lv.OpsPerSec, lv.AvgPowerWatts, lv.EE(),
				1000*lv.LatencyP50, 1000*lv.LatencyP99)
		}
	} else {
		fmt.Fprintln(tw, "target load\tssj_ops\tavg power (W)\tEE (ops/W)")
		for i := len(res.Levels) - 1; i >= 0; i-- {
			lv := res.Levels[i]
			fmt.Fprintf(tw, "%.0f%%\t%.0f\t%.1f\t%.1f\n",
				100*lv.TargetLoad, lv.OpsPerSec, lv.AvgPowerWatts, lv.EE())
		}
	}
	fmt.Fprintf(tw, "active idle\t0\t%.1f\t-\n", res.ActiveIdle.AvgPowerWatts)
	tw.Flush()
	peak, at := res.PeakEE()
	fmt.Fprintf(w, "\noverall EE (SPECpower score): %.1f   peak EE %.1f at %.0f%% load   peak power %.0f W\n",
		res.OverallEE(), peak, 100*at, res.PeakPowerWatts())
	return nil
}

func parseGovernor(s string) (power.Governor, error) {
	switch s {
	case "performance":
		return power.Performance(), nil
	case "ondemand":
		return power.OnDemand(), nil
	case "powersave":
		return power.PowerSave(), nil
	default:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return power.Governor{}, fmt.Errorf("unknown governor %q", s)
		}
		return power.UserSpace(f), nil
	}
}
