package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSweep(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-server", "2", "-interval", "5"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Sugon I620-G10", "ondemand", "1.8GHz", "peak power"} {
		if !strings.Contains(s, want) {
			t.Errorf("sweep output missing %q", want)
		}
	}
	if strings.Contains(s, "Fig.21") {
		t.Error("Fig.21 should only print for server 4")
	}
}

func TestRunSweepServer4IncludesFig21(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-server", "4", "-interval", "5"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig.21") {
		t.Error("server 4 sweep should include Fig.21")
	}
}

func TestRunSingle(t *testing.T) {
	var out, errBuf bytes.Buffer
	args := []string{"-server", "2", "-single", "-governor", "ondemand", "-memory", "16", "-interval", "5"}
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"governor ondemand", "16 GB memory", "calibrated throughput", "active idle", "overall EE"} {
		if !strings.Contains(s, want) {
			t.Errorf("single run missing %q:\n%s", want, s)
		}
	}
}

func TestRunSingleFixedFrequency(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-server", "4", "-single", "-governor", "1.8", "-interval", "5"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "busy 1.80 GHz") {
		t.Error("fixed frequency not honored")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-server", "9"}, &out, &errBuf); err == nil {
		t.Error("server 9 accepted")
	}
	if err := run([]string{"-server", "2", "-single", "-governor", "warp"}, &out, &errBuf); err == nil {
		t.Error("unknown governor accepted")
	}
	if err := run([]string{"-server", "2", "-single", "-memory", "7"}, &out, &errBuf); err == nil {
		t.Error("non-multiple memory accepted")
	}
}

func TestRunRepeat(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-server", "2", "-single", "-repeat", "4", "-interval", "5"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "4 runs") || !strings.Contains(s, "95% CI") {
		t.Errorf("repeat output missing:\n%s", s)
	}
}

func TestRunSingleTransactionFidelity(t *testing.T) {
	var out, errBuf bytes.Buffer
	args := []string{"-server", "2", "-single", "-fidelity", "tx", "-interval", "5"}
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "p99 (ms)") {
		t.Errorf("latency columns missing:\n%s", out.String())
	}
	if err := run([]string{"-server", "2", "-single", "-fidelity", "warp"}, &out, &errBuf); err == nil {
		t.Error("unknown fidelity accepted")
	}
}

func TestRunSingleMultiNode(t *testing.T) {
	var out, errBuf bytes.Buffer
	args := []string{"-server", "2", "-single", "-nodes", "4", "-interval", "5"}
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4 nodes") {
		t.Errorf("node note missing:\n%s", out.String())
	}
}
