// Command specverify runs the paper-invariant verification engine over
// a corpus and exits non-zero if any invariant fails.
//
// By default it generates the calibrated synthetic corpus at -seed and
// runs every registered invariant: structural (the 517/477/74 counts
// and curve shape facts), metric (the paper's published numbers
// recomputed from the raw disclosure fields), and differential (cold
// recomputation versus caches, worker schedules, the serving layer
// versus the library render). With -in it verifies a corpus loaded
// from a CSV or JSON file instead; generation-dependent invariants are
// then skipped.
//
// Usage:
//
//	specverify [-seed N] [-in FILE] [-category LIST] [-workers N] [-list] [-q]
package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/par"
	"repro/internal/verify"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "specverify:", err)
		os.Exit(1)
	}
}

// parseCategories maps a comma-separated -category value onto the
// registered categories, rejecting unknown names.
func parseCategories(s string) ([]verify.Category, error) {
	if s == "" {
		return nil, nil
	}
	known := make(map[verify.Category]bool)
	for _, c := range verify.Categories() {
		known[c] = true
	}
	var out []verify.Category
	for _, part := range strings.Split(s, ",") {
		c := verify.Category(strings.TrimSpace(part))
		if !known[c] {
			return nil, fmt.Errorf("unknown category %q (want structural, metric or differential)", part)
		}
		out = append(out, c)
	}
	return out, nil
}

// loadCorpus reads a corpus file (CSV, JSON, or EPFB) through the
// shared dataset.ReadPath dispatcher.
func loadCorpus(path string) (*dataset.Repository, error) {
	rp, err := dataset.ReadPath(path)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return rp, nil
}

// list prints the invariant registry without running anything.
func list(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "category\tinvariant\tchecks that")
	for _, inv := range verify.Registry() {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", inv.Category, inv.Name, inv.Doc)
	}
	tw.Flush()
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.New("specverify",
		"[-seed N] [-in FILE] [-category LIST] [-workers N] [-list] [-q]",
		"runs the paper-invariant verification engine (structural, metric and differential checks) over a synthetic or loaded corpus and exits non-zero on any failure", stderr)
	var (
		seed     = fs.Int64("seed", 1, "generator seed for the synthetic corpus (ignored with -in)")
		in       = fs.String("in", "", "verify a CSV/JSON corpus file instead of generating one")
		category = fs.String("category", "", "comma-separated categories to run (default all): structural,metric,differential")
		workers  = fs.Int("workers", 0, "cap the worker pool (0 = GOMAXPROCS)")
		showList = fs.Bool("list", false, "list the registered invariants and exit")
		quiet    = fs.Bool("q", false, "print only failures and the summary line")
	)
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}
	if *showList {
		list(stdout)
		return nil
	}
	categories, err := parseCategories(*category)
	if err != nil {
		return err
	}
	if *workers > 0 {
		par.SetMaxWorkers(*workers)
	}

	var ctx *verify.Context
	if *in != "" {
		rp, err := loadCorpus(*in)
		if err != nil {
			return err
		}
		ctx = verify.NewContext(rp, *seed, false)
	} else {
		ctx, err = verify.SyntheticContext(*seed)
		if err != nil {
			return err
		}
	}

	rep := verify.Run(ctx, categories...)
	if *quiet {
		for _, f := range rep.Failures() {
			fmt.Fprintf(stdout, "FAIL %s: %s\n", f.Name, f.Detail)
		}
		run, passed, failed, skipped := rep.Counts()
		fmt.Fprintf(stdout, "%d invariants: %d ok, %d failed, %d skipped (seed %d)\n",
			run, passed, failed, skipped, rep.Seed)
	} else {
		fmt.Fprint(stdout, rep.String())
	}
	if !rep.OK() {
		return fmt.Errorf("%d invariants failed: %s",
			len(rep.Failures()), strings.Join(rep.FailureNames(), ", "))
	}
	return nil
}
