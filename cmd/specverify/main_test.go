package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func TestRunSeed1Passes(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-seed", "1"}, &out, &errBuf); err != nil {
		t.Fatalf("seed-1 verification failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"structural/total-submissions", "metric/eq2-fit", "differential/cold-vs-memoized", "0 failed"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(s, "FAIL") {
		t.Errorf("verification reported failures:\n%s", s)
	}
}

func TestRunQuietPrintsOnlySummary(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-seed", "1", "-q", "-category", "structural"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "0 failed") {
		t.Errorf("quiet output not a single summary line:\n%s", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-list"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"structural/valid-count", "metric/corr-ep-idle", "differential/worker-invariance"} {
		if !strings.Contains(s, want) {
			t.Errorf("-list missing %q", want)
		}
	}
}

func TestRunRejectsUnknownCategory(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-category", "quantum"}, &out, &errBuf); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestRunVerifiesCorpusFile(t *testing.T) {
	rp, err := synth.NewRepository(synth.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, rp.All()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path}, &out, &errBuf); err != nil {
		t.Fatalf("file corpus failed verification: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1 skipped") {
		t.Errorf("file corpus should skip regeneration determinism:\n%s", out.String())
	}
}

// TestRunFailsOnCorruptedCorpus is the end-to-end negative path: a
// tampered corpus file must make the binary exit non-zero with the
// failed invariants named.
func TestRunFailsOnCorruptedCorpus(t *testing.T) {
	rp, err := synth.NewRepository(synth.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	results := rp.All()
	for _, r := range results[:50] { // inflate power mid-curve on 50 results
		r.Levels[5].AvgPowerWatts *= 3
	}
	path := filepath.Join(t.TempDir(), "corrupt.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, results); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errBuf bytes.Buffer
	err = run([]string{"-in", path, "-q"}, &out, &errBuf)
	if err == nil {
		t.Fatalf("corrupted corpus passed verification:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "invariants failed") {
		t.Errorf("error %q does not name failed invariants", err)
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("quiet output missing FAIL lines:\n%s", out.String())
	}
}

func TestRunRejectsMissingFile(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "absent.csv")}, &out, &errBuf); err == nil {
		t.Error("missing corpus file accepted")
	}
}
