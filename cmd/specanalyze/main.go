// Command specanalyze runs the paper's analyses over a SPECpower
// dataset (a CSV/JSON file produced by specgen, or a freshly generated
// synthetic corpus) and prints the requested figures and tables.
//
// Usage:
//
//	specanalyze [-in FILE] [-seed N] [-fig LIST] [-stats]
//
// -fig takes a comma-separated list of figure selectors: numbers 1-17
// for the dataset figures, "t1"/"t2" for the tables, or "all".
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/report"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "specanalyze:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.New("specanalyze",
		"[-in FILE] [-seed N] [-fig LIST] [-stats] [-json]",
		"runs the paper's analyses over a SPECpower dataset and prints the requested figures and tables", stderr)
	var (
		in        = fs.String("in", "", "dataset file (.csv or .json); empty generates the synthetic corpus")
		seed      = fs.Int64("seed", 1, "seed for the synthetic corpus when -in is empty")
		figs      = fs.String("fig", "all", "figures to print: e.g. 3,5,16 or t1,t2,e1..e5 or all")
		withStats = fs.Bool("stats", true, "print the headline statistics summary")
		show      = fs.String("show", "", "print one result as a SPEC-style disclosure and exit")
		asJSON    = fs.Bool("json", false, "emit every analysis as machine-readable JSON and exit")
	)
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}

	rp, err := loadRepository(*in, *seed)
	if err != nil {
		return err
	}
	valid := rp.Valid()
	fmt.Fprint(stderr, report.Summary(rp))

	if *asJSON {
		data, err := report.MarshalJSONSummary(rp)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(data))
		return nil
	}

	if *show != "" {
		for _, r := range rp.All() {
			if r.ID == *show {
				out, err := report.Disclosure(r)
				if err != nil {
					return err
				}
				fmt.Fprintln(stdout, out)
				return nil
			}
		}
		return fmt.Errorf("result %q not found", *show)
	}

	want := map[string]bool{}
	all := *figs == "all"
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	selected := func(key string) bool { return all || want[key] }

	type section struct {
		key    string
		render func() (string, error)
	}
	sections := []section{
		{"1", func() (string, error) {
			sample := bestSample(valid)
			if sample == nil {
				return "(no 2016 sample server)\n", nil
			}
			return report.Fig1EPCurve(sample)
		}},
		{"2", func() (string, error) { return report.Fig2Evolution(valid) }},
		{"3", func() (string, error) { return report.Fig3EPTrend(valid) }},
		{"4", func() (string, error) { return report.Fig4EETrend(valid) }},
		{"5", func() (string, error) { return report.Fig5EPCDF(valid) }},
		{"6", func() (string, error) { return report.Fig6Families(valid), nil }},
		{"7", func() (string, error) { return report.Fig7Codenames(valid), nil }},
		{"8", func() (string, error) { return report.Fig8MarchMix(valid), nil }},
		{"9", func() (string, error) { return report.Fig9PencilHead(valid), nil }},
		{"10", func() (string, error) { return report.Fig10SelectedEP(valid), nil }},
		{"11", func() (string, error) { return report.Fig11Almond(valid), nil }},
		{"12", func() (string, error) { return report.Fig12SelectedEE(valid), nil }},
		{"13", func() (string, error) { return report.Fig13Nodes(valid), nil }},
		{"14", func() (string, error) { return report.Fig14Chips(valid), nil }},
		{"15", func() (string, error) { return report.Fig15TwoChip(valid), nil }},
		{"16", func() (string, error) { return report.Fig16PeakShift(valid), nil }},
		{"17", func() (string, error) { return report.Fig17MPC(valid), nil }},
		{"t1", func() (string, error) { return report.TableIMPC(valid), nil }},
		{"t2", func() (string, error) { return report.TableIIServers(), nil }},
		{"e1", func() (string, error) { return report.FigE1GapTrend(valid) }},
		{"e3", func() (string, error) { return report.FigE3QuadratureAblation(valid) }},
		{"e4", func() (string, error) { return report.FigE4ImprovementRates(valid) }},
		{"e5", func() (string, error) { return report.FigE5PowerBreakdown(), nil }},
		{"e6", func() (string, error) { return report.FigE6Projection(valid) }},
		{"e7", func() (string, error) { return report.FigE7KnightShift(valid) }},
	}
	for _, s := range sections {
		if !selected(s.key) {
			continue
		}
		out, err := s.render()
		if err != nil {
			return fmt.Errorf("figure %s: %w", s.key, err)
		}
		fmt.Fprintln(stdout, out)
	}
	if *withStats {
		summary, err := report.StatsSummary(valid)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, summary)
	}
	return nil
}

func loadRepository(path string, seed int64) (*dataset.Repository, error) {
	if path == "" {
		return synth.NewRepository(synth.Config{Seed: seed})
	}
	return dataset.ReadPath(path)
}

func bestSample(rp *dataset.Repository) *dataset.Result {
	var best *dataset.Result
	bestEP := -1.0
	for _, r := range rp.YearRange(2016, 2016).All() {
		if ep := r.EP(); ep > bestEP {
			best, bestEP = r, ep
		}
	}
	return best
}
