package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func TestRunSelectedFigures(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-fig", "5,17", "-stats=false"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Fig.5") || !strings.Contains(s, "Fig.17") {
		t.Error("selected figures missing")
	}
	if strings.Contains(s, "Fig.3") {
		t.Error("unselected figure printed")
	}
}

func TestRunAllFiguresFromFile(t *testing.T) {
	results, err := synth.Generate(synth.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, results); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig.1", "Fig.16", "Table I", "Table II", "Fig.E4", "Eq.2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("full output missing %q", want)
		}
	}
}

func TestRunShowDisclosure(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-show", "power_ssj2008-0001"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SPECpower_ssj2008 disclosure — power_ssj2008-0001") {
		t.Errorf("disclosure missing:\n%s", out.String())
	}
	if err := run([]string{"-show", "nope"}, &out, &errBuf); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", "/nonexistent.csv"}, &out, &errBuf); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunJSONExport(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-json"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"yearly_trend"`) || !strings.Contains(out.String(), `"era_rates"`) {
		t.Error("JSON export incomplete")
	}
}
