package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunWeekSimulation(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-fleet", "15", "-days", "2"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"proportional", "pack-to-full", "spread-evenly", "kg CO2", "annualized", "/yr"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunPowerOff(t *testing.T) {
	var on, off, errBuf bytes.Buffer
	if err := run([]string{"-fleet", "10", "-days", "1", "-seed", "4"}, &on, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fleet", "10", "-days", "1", "-seed", "4", "-power-off"}, &off, &errBuf); err != nil {
		t.Fatal(err)
	}
	if on.String() == off.String() {
		t.Error("power-off made no difference")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-from", "1999", "-to", "2000"}, &out, &errBuf); err == nil {
		t.Error("empty year range accepted")
	}
	if err := run([]string{"-swing", "2"}, &out, &errBuf); err == nil {
		t.Error("invalid swing accepted")
	}
	if err := run([]string{"-in", "/nope.csv"}, &out, &errBuf); err == nil {
		t.Error("missing file accepted")
	}
}
