// Command spectrace simulates datacenter operations: it builds a fleet
// from a SPECpower dataset, synthesizes a diurnal demand trace, replays
// it under each placement strategy, and prices the difference — the
// paper's motivation (electricity bills and carbon footprints) made
// concrete.
//
// Usage:
//
//	spectrace [-in FILE | -seed N] [-fleet 30] [-days 7] [-load 0.45]
//	          [-swing 0.55] [-price 0.10] [-carbon 0.45] [-pue 1.5]
//	          [-power-off]
package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/placement"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "spectrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.New("spectrace",
		"[-in FILE | -seed N] [-fleet N] [-days D] [-load F] [-price USD] [-pue F]",
		"replays a diurnal demand trace against a fleet under each placement strategy and prices the difference", stderr)
	var (
		in       = fs.String("in", "", "dataset file (.csv or .json); empty generates the synthetic corpus")
		seed     = fs.Int64("seed", 1, "seed for corpus, trace, and fleet selection")
		fleetN   = fs.Int("fleet", 30, "fleet size")
		from     = fs.Int("from", 2011, "earliest hardware availability year for the fleet")
		to       = fs.Int("to", 2016, "latest hardware availability year for the fleet")
		days     = fs.Int("days", 7, "trace length in days")
		load     = fs.Float64("load", 0.45, "mean demand as a fraction of fleet capacity")
		swing    = fs.Float64("swing", 0.55, "diurnal swing amplitude [0, 1)")
		price    = fs.Float64("price", 0.10, "electricity price, USD per kWh")
		carbon   = fs.Float64("carbon", 0.45, "grid carbon intensity, kg CO2 per kWh")
		pue      = fs.Float64("pue", 1.5, "facility power usage effectiveness")
		powerOff = fs.Bool("power-off", false, "allow powering idle servers off")
	)
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}
	rp, err := load2(*in, *seed)
	if err != nil {
		return err
	}
	servers := rp.Valid().YearRange(*from, *to).All()
	if len(servers) == 0 {
		return fmt.Errorf("no servers in %d-%d", *from, *to)
	}
	if len(servers) > *fleetN {
		servers = servers[:*fleetN]
	}
	fleet := make([]*placement.Profile, 0, len(servers))
	var capacity float64
	for _, r := range servers {
		p, err := placement.NewProfile(r.ID, r.MustCurve())
		if err != nil {
			return err
		}
		fleet = append(fleet, p)
		capacity += p.MaxOps
	}

	tr, err := trace.Diurnal(trace.DiurnalConfig{
		Seed:          *seed,
		Days:          *days,
		BaseOps:       *load * capacity,
		DailySwing:    *swing,
		NoiseFrac:     0.04,
		SpikeProb:     0.005,
		WeekendFactor: 0.7,
	})
	if err != nil {
		return err
	}
	stats := tr.Stats()
	fmt.Fprintf(stdout, "fleet: %d servers (%d-%d), %.1fM ops capacity\n",
		len(fleet), *from, *to, capacity/1e6)
	fmt.Fprintf(stdout, "trace: %d days, mean %.0f%% of capacity, peak %.0f%%, load factor %.2f\n\n",
		*days, 100*stats.MeanOps/capacity, 100*stats.PeakOps/capacity, stats.LoadFactor)

	tariff := trace.Tariff{USDPerKWh: *price, KgCO2PerKWh: *carbon, PUE: *pue}
	opts := placement.Options{IdleServersOff: *powerOff}
	results, err := trace.CompareStrategies(tr, fleet, opts)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tIT kWh\tavg W\tpeak W\tfleet EE\tfacility kWh\tUSD\tkg CO2")
	var annualNote []string
	for _, r := range results {
		bill, err := trace.Cost(r, tariff)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.0f\t%.0f\t%.1f\t%.1f\t$%.2f\t%.1f\n",
			r.Strategy, r.EnergyKWh, r.AvgPowerWatts, r.PeakPowerWatts, r.AvgEE,
			bill.FacilityKWh, bill.USD, bill.KgCO2)
		annual, err := trace.AnnualizedBill(bill, float64(*days))
		if err != nil {
			return err
		}
		annualNote = append(annualNote,
			fmt.Sprintf("  %-14s $%.0f/yr, %.1f t CO2/yr", r.Strategy, annual.USD, annual.KgCO2/1000))
	}
	tw.Flush()
	fmt.Fprintf(stdout, "\nannualized (tariff $%.2f/kWh, %.2f kgCO2/kWh, PUE %.2f):\n%s\n",
		*price, *carbon, *pue, strings.Join(annualNote, "\n"))
	return nil
}

func load2(path string, seed int64) (*dataset.Repository, error) {
	if path == "" {
		return synth.NewRepository(synth.Config{Seed: seed})
	}
	return dataset.ReadPath(path)
}
