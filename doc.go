// Package repro is a reproduction of "Energy Proportional Servers:
// Where Are We in 2016?" (Jiang, Wang, Ou, Luo, Shi — ICDCS 2017) as a
// production-quality Go library.
//
// The paper analyses all 477 valid SPECpower_ssj2008 results published
// between 2007 and 2016Q3, reorganized by hardware availability year,
// and runs memory and DVFS experiments on four rack servers. This
// module provides:
//
//   - the metric kernel (energy proportionality Eq. 1, linear
//     deviation, dynamic range, peak-efficiency analysis) over
//     SPECpower-style power/performance curves;
//   - a result model with compliance validation, CSV/JSON codecs, and a
//     filtering/grouping repository;
//   - a seeded synthetic corpus generator calibrated to every statistic
//     the paper reports (the published corpus itself is not
//     redistributable);
//   - component-level server power models (CPU DVFS, DRAM, disks, fans,
//     PSU) with the paper's four Table II machines, and a
//     SPECpower-style benchmark harness that drives them through
//     calibration, ten graduated load levels, and active idle;
//   - every analysis of the evaluation section (trends, envelopes,
//     economies of scale, peak-efficiency shift, correlations, Eq. 2)
//     plus report formatters that regenerate each figure and table;
//   - an energy-proportionality-aware workload placement engine
//     operationalizing Section V.
//
// This root package is a facade re-exporting the stable API; the
// implementation lives under internal/. Start with Quickstart in the
// README, or:
//
//	corpus, err := repro.GenerateCorpus(repro.SynthConfig{Seed: 1})
//	valid := corpus.Valid()
//	trend, err := repro.YearlyTrend(valid)
package repro
