// Whatif: fit a component-level power model to a measured corpus server
// and simulate configurations the disclosure never tested — different
// memory installations and pinned DVFS frequencies — closing the loop
// between the paper's dataset analysis (§III) and its hardware
// experiments (§V).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	corpus, err := repro.GenerateCorpus(repro.SynthConfig{Seed: 21})
	if err != nil {
		return err
	}
	// Pick a recent single-node server with a meaningful memory
	// installation.
	var target *repro.Result
	for _, r := range corpus.Valid().SingleNode().YearRange(2013, 2016).All() {
		if r.MemoryGB >= 64 {
			target = r
			break
		}
	}
	if target == nil {
		return fmt.Errorf("no suitable server")
	}
	curve := target.MustCurve()
	fmt.Printf("target: %s — %s (%d), %d chips × %d cores, %.0f GB\n",
		target.ID, target.CPUModel, target.HWAvailYear,
		target.Chips, target.CoresPerChip, target.MemoryGB)
	fmt.Printf("measured: score %.0f, EP %.3f, idle %.0f W, full load %.0f W\n\n",
		curve.OverallEE(), curve.EP(), curve.IdlePower(), curve.PeakPower())

	// Fit the component model.
	model, err := repro.FitServer(target)
	if err != nil {
		return err
	}
	fmt.Printf("fitted model: %d × %.0f W CPU, %d DIMMs, %.0f W platform floor\n",
		model.CPUCount, model.CPU.TDPWatts, len(model.DIMMs), model.PlatformIdleWatts)
	fmt.Printf("model check: idle %.0f W, full load %.0f W (measured %.0f / %.0f)\n\n",
		model.WallPower(0, model.CPU.NominalGHz), model.WallPower(1, model.CPU.NominalGHz),
		curve.IdlePower(), curve.PeakPower())

	// What-if 1: memory installations the vendor never submitted.
	fmt.Println("what-if: memory installation (simulated SPECpower, performance governor)")
	base := int(model.MemoryGB())
	dimm := model.DIMMs[0].SizeGB
	var mems []repro.MemoryConfig
	for _, gb := range []int{base / 2, base, base * 2} {
		if gb >= dimm {
			mems = append(mems, repro.MemoryConfig{TotalGB: gb, DIMMSizeGB: dimm})
		}
	}
	pts, err := repro.Sweep(model, mems, []repro.Governor{repro.Performance()}, 9)
	if err != nil {
		return err
	}
	for _, p := range pts {
		marker := ""
		if p.MemoryGB == base {
			marker = "  ← as disclosed"
		}
		fmt.Printf("  %4d GB (%.2f GB/core): score %7.0f, peak power %.0f W%s\n",
			p.MemoryGB, p.MemoryPerCore, p.OverallEE, p.PeakPowerWatts, marker)
	}

	// What-if 2: DVFS ladder.
	fmt.Println("\nwhat-if: pinned CPU frequency (as-disclosed memory)")
	var govs []repro.Governor
	for _, f := range model.Frequencies() {
		govs = append(govs, repro.UserSpace(f))
	}
	govs = append(govs, repro.OnDemand())
	fpts, err := repro.Sweep(model,
		[]repro.MemoryConfig{{TotalGB: base, DIMMSizeGB: dimm}}, govs, 10)
	if err != nil {
		return err
	}
	for _, p := range fpts {
		fmt.Printf("  %-12s score %7.0f, peak power %.0f W\n", p.Governor, p.OverallEE, p.PeakPowerWatts)
	}
	fmt.Println("\nthe §V findings hold on the fitted corpus server: efficiency peaks at the")
	fmt.Println("disclosed memory point and falls at every lower frequency.")
	return nil
}
