// Quickstart: generate the calibrated synthetic SPECpower corpus,
// inspect one server's proportionality metrics, and print the yearly
// energy-proportionality trend — the paper's Fig. 3 in five minutes.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The corpus is a pure function of the seed: 517 submissions, of
	// which 477 pass SPEC's compliance rules.
	corpus, err := repro.GenerateCorpus(repro.SynthConfig{Seed: 42})
	if err != nil {
		return err
	}
	valid := corpus.Valid()
	fmt.Printf("generated %d submissions, %d compliant\n\n", corpus.Len(), valid.Len())

	// Per-server metrics: pick the most proportional server on record.
	best := valid.SortByEP()[valid.Len()-1]
	curve := best.MustCurve()
	fmt.Printf("most proportional server: %s (%d, %s)\n", best.ID, best.HWAvailYear, best.CPUModel)
	fmt.Printf("  EP = %.3f (ideal = 1.0)\n", curve.EP())
	fmt.Printf("  idle power: %.1f%% of full-load power\n", 100*curve.IdleFraction())
	fmt.Printf("  dynamic range: %.1f%%\n", 100*curve.DynamicRange())
	peak, spots := curve.PeakEE()
	fmt.Printf("  peak efficiency %.0f ssj_ops/W at %.0f%% load\n", peak, 100*spots[0])
	fmt.Printf("  overall SPECpower score: %.0f\n\n", curve.OverallEE())

	// The Fig. 3 trend: energy proportionality by hardware availability
	// year.
	trend, err := repro.YearlyTrend(valid)
	if err != nil {
		return err
	}
	fmt.Println("year   n    EP(avg)  EP(median)  EP(min)  EP(max)")
	for _, ys := range trend {
		fmt.Printf("%d  %4d   %.3f    %.3f       %.3f    %.3f\n",
			ys.Year, ys.N, ys.EP.Mean, ys.EP.Median, ys.EP.Min, ys.EP.Max)
	}

	// The paper's Eq. 2: proportionality rises exponentially as idle
	// power falls.
	reg, err := repro.FitIdleRegression(valid)
	if err != nil {
		return err
	}
	fmt.Printf("\nEq.2 fit: EP = %.3f · e^(%.2f · idle)   R² = %.3f\n",
		reg.Fit.A, reg.Fit.B, reg.Fit.R2)
	fmt.Printf("at 5%% idle power the fit predicts EP = %.2f\n", reg.EPAtFivePercentIdle)
	return nil
}
