// Placement: energy-proportionality-aware workload placement on a
// heterogeneous fleet (paper §V.C). Builds a 40-server fleet spanning
// 2010-2016 hardware from the synthetic corpus, clusters it by
// proportionality band, and compares the EP-aware placement strategy
// against pack-to-full and spread-evenly baselines across the demand
// range.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	corpus, err := repro.GenerateCorpus(repro.SynthConfig{Seed: 7})
	if err != nil {
		return err
	}
	// A realistic mixed fleet: servers of several generations co-exist.
	servers := corpus.Valid().YearRange(2010, 2016).All()[:40]
	fleet := make([]*repro.PlacementProfile, 0, len(servers))
	var capacity float64
	for _, r := range servers {
		p, err := repro.NewPlacementProfile(r.ID, r.MustCurve())
		if err != nil {
			return err
		}
		fleet = append(fleet, p)
		capacity += p.MaxOps
	}
	fmt.Printf("fleet: %d servers, %.1fM ssj_ops capacity\n\n", len(fleet), capacity/1e6)

	// Logical clusters: group by EP band, then by overlapping optimal
	// working regions (§V.C).
	clusters, err := repro.BuildClusters(fleet, 0.1)
	if err != nil {
		return err
	}
	fmt.Printf("logical clusters (EP band 0.1):\n")
	for i, cl := range clusters {
		fmt.Printf("  #%d: %2d servers, EP %.2f-%.2f, optimal region %.0f%%-%.0f%%, capacity %.1fM ops\n",
			i+1, len(cl.Servers), cl.EPLow, cl.EPHigh,
			100*cl.Region.Lo, 100*cl.Region.Hi, cl.Capacity()/1e6)
	}

	// Compare strategies across the demand range.
	fmt.Printf("\ndemand   EP-aware EE   pack-full EE   spread EE   EP-aware saving vs spread\n")
	for _, frac := range []float64{0.2, 0.35, 0.5, 0.65, 0.8, 0.95} {
		demand := frac * capacity
		prop, err := repro.PlaceProportional(fleet, demand, repro.PlacementOptions{})
		if err != nil {
			return err
		}
		pack, err := repro.PackToFull(fleet, demand, repro.PlacementOptions{})
		if err != nil {
			return err
		}
		spread, err := repro.SpreadEvenly(fleet, demand, repro.PlacementOptions{})
		if err != nil {
			return err
		}
		saving := 100 * (1 - prop.TotalPower/spread.TotalPower)
		fmt.Printf("%5.0f%%   %11.1f   %12.1f   %9.1f   %+.1f%% power\n",
			100*frac, prop.EE(), pack.EE(), spread.EE(), -saving)
	}

	// Fixed power budget: how much more work does EP-awareness buy?
	capWatts := 0.5 * fleetPeakPower(fleet)
	capped, err := repro.MaxThroughputUnderCap(fleet, capWatts, repro.PlacementOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\nunder a %.0f W cap (50%% of fleet peak): %.1fM ops at %.1f ops/W\n",
		capWatts, capped.TotalOps/1e6, capped.EE())
	return nil
}

func fleetPeakPower(fleet []*repro.PlacementProfile) float64 {
	var w float64
	for _, p := range fleet {
		w += p.PowerAt(1)
	}
	return w
}
