// Datacenter: a week of operations. Builds a heterogeneous fleet from
// the synthetic corpus, synthesizes a diurnal demand trace with weekend
// dips and bursts, and accounts the energy bill under three placement
// strategies — quantifying the paper's motivation that fluctuating,
// low-to-medium utilization is where energy proportionality pays.
// Also shows cluster-wide proportionality: the same fleet's aggregate
// power curve under each load-distribution policy.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	corpus, err := repro.GenerateCorpus(repro.SynthConfig{Seed: 11})
	if err != nil {
		return err
	}
	servers := corpus.Valid().YearRange(2011, 2016).All()[:30]
	fleet := make([]*repro.PlacementProfile, 0, len(servers))
	var capacity float64
	for _, r := range servers {
		p, err := repro.NewPlacementProfile(r.ID, r.MustCurve())
		if err != nil {
			return err
		}
		fleet = append(fleet, p)
		capacity += p.MaxOps
	}

	// A week of demand averaging 45% of capacity, peaking around 75%,
	// with weekend dips and occasional bursts.
	tr, err := repro.DiurnalTrace(repro.DiurnalConfig{
		Seed:          5,
		Days:          7,
		BaseOps:       0.45 * capacity,
		DailySwing:    0.55,
		NoiseFrac:     0.04,
		SpikeProb:     0.01,
		WeekendFactor: 0.6,
	})
	if err != nil {
		return err
	}
	stats := tr.Stats()
	fmt.Printf("fleet: %d servers, %.1fM ops capacity\n", len(fleet), capacity/1e6)
	fmt.Printf("trace: %d days, mean %.1fM ops (%.0f%% of capacity), peak %.1fM, load factor %.2f\n\n",
		7, stats.MeanOps/1e6, 100*stats.MeanOps/capacity, stats.PeakOps/1e6, stats.LoadFactor)

	results, err := repro.CompareTraceStrategies(tr, fleet, repro.PlacementOptions{})
	if err != nil {
		return err
	}
	fmt.Println("one week of operations by placement strategy:")
	var baseline float64
	for _, r := range results {
		if r.Strategy == repro.StrategySpreadEvenly {
			baseline = r.EnergyKWh
		}
	}
	for _, r := range results {
		fmt.Printf("  %-14s %8.1f kWh  avg %6.0f W  peak %6.0f W  fleet EE %6.1f  (%+.1f%% vs spread)\n",
			r.Strategy, r.EnergyKWh, r.AvgPowerWatts, r.PeakPowerWatts, r.AvgEE,
			100*(r.EnergyKWh/baseline-1))
	}

	// With power-off for idle machines the gap widens further.
	off, err := repro.ReplayTrace(tr, fleet, repro.StrategyProportional, repro.PlacementOptions{IdleServersOff: true})
	if err != nil {
		return err
	}
	fmt.Printf("  %-14s %8.1f kWh (proportional + idle power-off, %+.1f%% vs spread)\n\n",
		"prop+off", off.EnergyKWh, 100*(off.EnergyKWh/baseline-1))

	// What the policy choice is worth on the bill, annualized.
	tariff := repro.DefaultTariff()
	spreadRes := results[len(results)-1] // spread-evenly is last in order
	for _, r := range results {
		if r.Strategy == repro.StrategySpreadEvenly {
			spreadRes = r
		}
	}
	spreadBill, err := repro.EnergyCost(spreadRes, tariff)
	if err != nil {
		return err
	}
	offBill, err := repro.EnergyCost(off, tariff)
	if err != nil {
		return err
	}
	spreadYear, _ := repro.AnnualizedBill(spreadBill, 7)
	offYear, _ := repro.AnnualizedBill(offBill, 7)
	fmt.Printf("annualized at $%.2f/kWh, %.2f kgCO2/kWh, PUE %.1f:\n",
		tariff.USDPerKWh, tariff.KgCO2PerKWh, tariff.PUE)
	fmt.Printf("  spread-evenly: $%.0f/yr, %.1f t CO2\n", spreadYear.USD, spreadYear.KgCO2/1000)
	fmt.Printf("  prop+off:      $%.0f/yr, %.1f t CO2  (saves $%.0f and %.1f t CO2 per year)\n\n",
		offYear.USD, offYear.KgCO2/1000, spreadYear.USD-offYear.USD, (spreadYear.KgCO2-offYear.KgCO2)/1000)

	// Cluster-wide proportionality: the fleet's aggregate curve under
	// each distribution policy.
	fmt.Println("cluster-wide energy proportionality of the same fleet:")
	cmp, err := repro.CompareClusterPolicies(fleet)
	if err != nil {
		return err
	}
	for _, row := range cmp.Rows {
		fmt.Printf("  policy %-15s cluster EP %.3f  idle %.1f%%  half-load draw %.0f W\n",
			row.Policy, row.EP, 100*row.IdleFraction, row.HalfLoadWatts)
	}
	fmt.Println("\npacking with power-off approaches ideal proportionality (EP → 1):")
	sizes := []int{1, 2, 4, 8, 16}
	pts, err := repro.ClusterScalingStudy(fleet[0], sizes, repro.PolicyPackPowerOff)
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("  %2d nodes: cluster EP %.3f\n", p.Nodes, p.EP)
	}
	return nil
}
