// Fleet: economies of scale in energy proportionality (paper §III.E,
// Fig. 13-15). Shows that multi-node results grow more proportional
// with node count, that 2-chip single-node servers lead their
// generation, and quantifies the paper's headline correlations over the
// corpus.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	servers := flag.Int("servers", 0,
		"generate a synthetic fleet of this size and compare cluster policies over it (0 = corpus demo)")
	flag.Parse()
	var err error
	if *servers > 0 {
		err = runFleet(*servers)
	} else {
		err = run()
	}
	if err != nil {
		log.Fatal(err)
	}
}

// runFleet exercises the fleet-scale path: a sharded synthetic fleet,
// flattened placement profiles, and the policy comparison over the
// whole fleet at once.
func runFleet(servers int) error {
	start := time.Now()
	fleet, err := repro.GenerateFleet(repro.FleetConfig{Seed: 1, Servers: servers})
	if err != nil {
		return err
	}
	profiles, err := repro.FleetProfiles(fleet)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d-server fleet in %v\n\n", servers, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	cmp, err := repro.CompareClusterPolicies(profiles)
	if err != nil {
		return err
	}
	fmt.Printf("cluster policies over %d members (%v):\n", cmp.Members, time.Since(start).Round(time.Millisecond))
	for _, row := range cmp.Rows {
		fmt.Printf("  %-14v EP %.3f  idle fraction %.3f  half-load %.0f W\n",
			row.Policy, row.EP, row.IdleFraction, row.HalfLoadWatts)
	}
	return nil
}

func run() error {
	corpus, err := repro.GenerateCorpus(repro.SynthConfig{Seed: 3})
	if err != nil {
		return err
	}
	valid := corpus.Valid()

	// Fig. 13: EP improves with node count — grouping identical nodes
	// on one workload is more proportional than running them alone.
	fmt.Println("economies of scale by node count (Fig. 13):")
	for _, g := range repro.ByNodes(valid, 3) {
		fmt.Printf("  %2d nodes: n=%3d  median EP %.3f  mean EP %.3f  mean EE %.0f\n",
			g.Key, g.N, g.MedianEP, g.MeanEP, g.MeanEE)
	}

	// Fig. 14: among single-node servers the 2-chip configuration wins;
	// power density outgrows performance at 4 and 8 sockets.
	fmt.Println("\nsingle-node servers by chip count (Fig. 14):")
	for _, g := range repro.ByChips(valid, 3) {
		fmt.Printf("  %d chips: n=%3d  mean EP %.3f  mean EE %.0f\n",
			g.Key, g.N, g.MeanEP, g.MeanEE)
	}

	// §IV.B: proportionality leaders and efficiency leaders are
	// different machines from different years.
	async := repro.Asynchronization(valid)
	fmt.Printf("\ntop-decile asymmetry (n=%d per decile):\n", async.TopN)
	fmt.Printf("  top-EP servers from 2012: %.1f%% (2012 holds %.1f%% of the corpus)\n",
		100*async.TopEPFrom2012, 100*async.Share2012)
	fmt.Printf("  top-EE servers from 2012: %.1f%%; all %d servers from 2015-16 are top-EE\n",
		100*async.TopEEFrom2012, async.Servers20152016InTopEE)
	fmt.Printf("  only %.1f%% of the top-EP decile is also top-EE\n", 100*async.Overlap)

	// Headline correlations.
	corr, err := repro.ComputeCorrelations(valid)
	if err != nil {
		return err
	}
	fmt.Printf("\ncorrelations over %d servers:\n", corr.N)
	fmt.Printf("  EP vs overall efficiency: %+.3f\n", corr.EPvsOverallEE)
	fmt.Printf("  EP vs idle power fraction: %+.3f\n", corr.EPvsIdleFraction)
	fmt.Printf("  EP vs peak-efficiency offset from 100%%: %+.3f\n", corr.EPvsPeakOffset)
	return nil
}
