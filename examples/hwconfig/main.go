// Hwconfig: the paper's hardware-configuration experiments (§V.A/§V.B)
// on a modeled Table II server — sweep installed memory per core and
// DVFS frequency with the simulated SPECpower harness, and locate the
// best-efficiency configuration.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Server #2: Sugon I620-G10 — 1 × Xeon E5-2603 (4 cores), 32 GB.
	srv := repro.TableIIServers()[1]
	fmt.Printf("server under test: %s (%d), %d × %s, %d cores, %.0f GB %v\n\n",
		srv.Name, srv.HWYear, srv.CPUCount, srv.CPU.Model,
		srv.TotalCores(), srv.MemoryGB(), srv.DIMMs[0].Type)

	// Memory sweep at the performance governor (Fig. 19's columns):
	// 2, 4, and 8 GB per core.
	mems := []repro.MemoryConfig{
		{TotalGB: 8, DIMMSizeGB: 4},
		{TotalGB: 16, DIMMSizeGB: 4},
		{TotalGB: 32, DIMMSizeGB: 4},
	}
	memPts, err := repro.Sweep(srv, mems, []repro.Governor{repro.Performance()}, 11)
	if err != nil {
		return err
	}
	fmt.Println("memory sweep (performance governor):")
	best := memPts[0]
	for _, p := range memPts {
		fmt.Printf("  %5.2f GB/core (%2d GB): overall EE %7.1f, peak power %.0f W\n",
			p.MemoryPerCore, p.MemoryGB, p.OverallEE, p.PeakPowerWatts)
		if p.OverallEE > best.OverallEE {
			best = p
		}
	}
	fmt.Printf("best memory per core: %.2f GB/core (the paper measured 4 GB/core on this machine)\n\n",
		best.MemoryPerCore)

	// Frequency sweep at the best memory configuration (Fig. 19's
	// rows): every P-state plus the ondemand governor.
	bestMem := []repro.MemoryConfig{{TotalGB: best.MemoryGB, DIMMSizeGB: 4}}
	var govs []repro.Governor
	for _, f := range srv.Frequencies() {
		govs = append(govs, repro.UserSpace(f))
	}
	govs = append(govs, repro.OnDemand())
	freqPts, err := repro.Sweep(srv, bestMem, govs, 12)
	if err != nil {
		return err
	}
	sort.SliceStable(freqPts, func(i, j int) bool { return freqPts[i].OverallEE < freqPts[j].OverallEE })
	fmt.Printf("frequency sweep at %.0f GB:\n", float64(best.MemoryGB))
	for _, p := range freqPts {
		fmt.Printf("  %-12s (busy %.2f GHz): overall EE %7.1f, peak power %.0f W\n",
			p.Governor, p.BusyFreqGHz, p.OverallEE, p.PeakPowerWatts)
	}
	fmt.Println("\n§V.B's findings hold: every lower frequency loses efficiency, and")
	fmt.Println("ondemand tracks the top frequency at essentially the same power.")
	return nil
}
