// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section. Each benchmark regenerates its figure from the
// calibrated synthetic corpus (or the simulated Table II servers for
// Fig. 18-21) and prints the series once, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation and times every analysis.
package repro_test

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro"
	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/synth"
)

var (
	corpusOnce  sync.Once
	corpusValid *dataset.Repository
	printed     sync.Map
)

// benchCorpus returns the shared 477-server corpus.
func benchCorpus(b *testing.B) *dataset.Repository {
	b.Helper()
	corpusOnce.Do(func() {
		rp, err := synth.NewRepository(synth.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		corpusValid = rp.Valid()
	})
	return corpusValid
}

// printOnce emits a regenerated figure exactly once per process.
func printOnce(key, text string) {
	if _, loaded := printed.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

func BenchmarkFig01EPCurve(b *testing.B) {
	rp := benchCorpus(b)
	var sample *dataset.Result
	for _, r := range rp.YearRange(2016, 2016).All() {
		if sample == nil || r.EP() > sample.EP() {
			sample = r
		}
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = report.Fig1EPCurve(sample)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig1", out)
}

func BenchmarkFig02Evolution(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = report.Fig2Evolution(rp)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig2", out)
}

func BenchmarkFig03EPTrend(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = report.Fig3EPTrend(rp)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig3", out)
}

func BenchmarkFig04EETrend(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = report.Fig4EETrend(rp)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig4", out)
}

func BenchmarkFig05EPCDF(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = report.Fig5EPCDF(rp)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig5", out)
}

func BenchmarkFig06MarchCount(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Fig6Families(rp)
	}
	printOnce("fig6", out)
}

func BenchmarkFig07CodenameEP(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Fig7Codenames(rp)
	}
	printOnce("fig7", out)
}

func BenchmarkFig08MarchMix(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Fig8MarchMix(rp)
	}
	printOnce("fig8", out)
}

func BenchmarkFig09PencilHead(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Fig9PencilHead(rp)
	}
	printOnce("fig9", out)
}

func BenchmarkFig10SelectedEP(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Fig10SelectedEP(rp)
	}
	printOnce("fig10", out)
}

func BenchmarkFig11Almond(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Fig11Almond(rp)
	}
	printOnce("fig11", out)
}

func BenchmarkFig12SelectedEE(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Fig12SelectedEE(rp)
	}
	printOnce("fig12", out)
}

func BenchmarkFig13NodeScale(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Fig13Nodes(rp)
	}
	printOnce("fig13", out)
}

func BenchmarkFig14ChipScale(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Fig14Chips(rp)
	}
	printOnce("fig14", out)
}

func BenchmarkFig15TwoChip(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Fig15TwoChip(rp)
	}
	printOnce("fig15", out)
}

func BenchmarkFig16PeakShift(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Fig16PeakShift(rp)
	}
	printOnce("fig16", out)
}

func BenchmarkFig17MPC(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Fig17MPC(rp)
	}
	printOnce("fig17", out)
}

// sweepFigure runs one hardware-experiment sweep with shortened
// intervals (the methodology is identical; only the simulated
// measurement time shrinks).
func sweepFigure(b *testing.B, srv power.ServerConfig, key, title string) []bench.SweepPoint {
	b.Helper()
	mems := bench.PaperMemoryConfigs(srv)
	govs := bench.AllFrequencyGovernors(srv)
	var pts []bench.SweepPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = sweepShort(srv, mems, govs, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce(key, report.SweepFigure(title, pts))
	return pts
}

func sweepShort(srv power.ServerConfig, mems []bench.MemoryConfig, govs []power.Governor, seed int64) ([]bench.SweepPoint, error) {
	out := make([]bench.SweepPoint, 0, len(mems)*len(govs))
	for mi, mem := range mems {
		cfg, err := srv.WithMemory(mem.TotalGB, mem.DIMMSizeGB)
		if err != nil {
			return nil, err
		}
		for gi, gov := range govs {
			runner, err := bench.NewRunner(bench.Config{
				Server:          cfg,
				Governor:        gov,
				Seed:            seed + int64(mi)*1009 + int64(gi)*9176,
				IntervalSeconds: 20,
			})
			if err != nil {
				return nil, err
			}
			res, err := runner.Run()
			if err != nil {
				return nil, err
			}
			peakEE, atLoad := res.PeakEE()
			out = append(out, bench.SweepPoint{
				Server:         cfg.Name,
				MemoryGB:       mem.TotalGB,
				MemoryPerCore:  float64(mem.TotalGB) / float64(cfg.TotalCores()),
				Governor:       gov.Name(),
				BusyFreqGHz:    res.BusyFreqGHz,
				OverallEE:      res.OverallEE(),
				PeakEE:         peakEE,
				PeakEEAtLoad:   atLoad,
				PeakPowerWatts: res.PeakPowerWatts(),
			})
		}
	}
	return out, nil
}

func BenchmarkFig18Server1Sweep(b *testing.B) {
	sweepFigure(b, power.Server1SugonA620rG(), "fig18",
		"Fig.18 EE vs memory per core × frequency on #1 (Sugon A620r-G)")
}

func BenchmarkFig19Server2Sweep(b *testing.B) {
	sweepFigure(b, power.Server2SugonI620G10(), "fig19",
		"Fig.19 EE vs memory per core × frequency on #2 (Sugon I620-G10)")
}

func BenchmarkFig20Server4Sweep(b *testing.B) {
	sweepFigure(b, power.Server4ThinkServerRD450(), "fig20",
		"Fig.20 EE vs memory per core × frequency on #4 (ThinkServer RD450)")
}

func BenchmarkFig21Server4Power(b *testing.B) {
	srv := power.Server4ThinkServerRD450()
	mems := bench.PaperMemoryConfigs(srv)
	govs := bench.AllFrequencyGovernors(srv)
	var pts []bench.SweepPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = sweepShort(srv, mems, govs, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce("fig21", report.Fig21PowerAndEE(pts))
}

func BenchmarkTab1MPCCounts(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.TableIMPC(rp)
	}
	printOnce("tab1", out)
}

func BenchmarkTab2Servers(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = report.TableIIServers()
	}
	printOnce("tab2", out)
}

func BenchmarkReorgDeltas(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var deltas []analysis.ReorgDelta
	for i := 0; i < b.N; i++ {
		var err error
		deltas, err = analysis.YearReorgDeltas(rp)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, loaded := printed.LoadOrStore("reorg", true); !loaded {
		fmt.Printf("\nPublished-year vs hw-availability-year deltas (%d years):\n", len(deltas))
		for _, d := range deltas {
			fmt.Printf("  %d: avg EP %+.1f%%, med EP %+.1f%%, avg EE %+.1f%%, med EE %+.1f%% (n %d vs %d)\n",
				d.Year, d.AvgEPDeltaPct, d.MedEPDeltaPct, d.AvgEEDeltaPct, d.MedEEDeltaPct, d.NHWYear, d.NPub)
		}
	}
}

func BenchmarkEq2IdleRegression(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var reg analysis.IdleRegression
	for i := 0; i < b.N; i++ {
		var err error
		reg, err = analysis.FitIdleRegression(rp)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(reg.Fit.R2, "R2")
	b.ReportMetric(reg.Fit.A, "A")
	printOnce("eq2", fmt.Sprintf("Eq.2: EP = %.4f·e^(%.3f·idle)  R²=%.3f  corr=%.3f (paper: 1.2969, -2.06, 0.892, -0.92)",
		reg.Fit.A, reg.Fit.B, reg.Fit.R2, reg.Correlation))
}

func BenchmarkCorrEPvsEE(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var corr analysis.Correlations
	for i := 0; i < b.N; i++ {
		var err error
		corr, err = analysis.ComputeCorrelations(rp)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(corr.EPvsOverallEE, "corr")
	printOnce("correlations", fmt.Sprintf("corr(EP, overall EE) = %.3f (paper: 0.741)", corr.EPvsOverallEE))
}

func BenchmarkAsync(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var async analysis.AsyncStats
	for i := 0; i < b.N; i++ {
		async = analysis.Asynchronization(rp)
	}
	b.StopTimer()
	printOnce("async", fmt.Sprintf(
		"Top-decile asymmetry: top-EP from 2012 %.1f%% (paper 91.7%%), top-EE from 2012 %.1f%% (paper 16.7%%), overlap %.1f%% (paper 14.6%%)",
		100*async.TopEPFrom2012, 100*async.TopEEFrom2012, 100*async.Overlap))
}

// BenchmarkCorpusGeneration times the full 517-submission synthesis.
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(synth.Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepositoryMetricsCold measures the one-time cost of building
// every curve and metric column from scratch: each iteration clones the
// corpus (fresh, empty caches) and precomputes it.
func BenchmarkRepositoryMetricsCold(b *testing.B) {
	rp := benchCorpus(b)
	all := rp.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fresh := make([]*dataset.Result, len(all))
		for j, r := range all {
			fresh[j] = r.Clone()
		}
		cold := dataset.NewRepository(fresh)
		b.StartTimer()
		cold.Precompute()
		if eps := cold.EPs(); len(eps) != len(all) {
			b.Fatalf("got %d EPs", len(eps))
		}
	}
}

// BenchmarkRepositoryMetricsWarm measures the steady-state cost the
// analyses actually pay: reading three full metric columns off the
// warm cache.
func BenchmarkRepositoryMetricsWarm(b *testing.B) {
	rp := benchCorpus(b)
	rp.Precompute()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(rp.EPs())+len(rp.OverallEEs())+len(rp.IdleFractions()) != 3*rp.Len() {
			b.Fatal("short column")
		}
	}
}

// BenchmarkSortByEP times the key-column sort over the full corpus.
func BenchmarkSortByEP(b *testing.B) {
	rp := benchCorpus(b)
	rp.Precompute()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sorted := rp.SortByEP(); len(sorted) != rp.Len() {
			b.Fatal("short sort")
		}
	}
}

// BenchmarkPlacement times the EP-aware planner on a 100-server fleet.
func BenchmarkPlacement(b *testing.B) {
	rp := benchCorpus(b)
	servers := rp.YearRange(2009, 2016).All()[:100]
	fleet := make([]*repro.PlacementProfile, 0, len(servers))
	var capacity float64
	for _, r := range servers {
		p, err := repro.NewPlacementProfile(r.ID, r.MustCurve())
		if err != nil {
			b.Fatal(err)
		}
		fleet = append(fleet, p)
		capacity += p.MaxOps
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.PlaceProportional(fleet, 0.5*capacity, repro.PlacementOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension benchmarks (not in the paper): the low-utilization
// proportionality gap, cluster-wide EP by policy, the Eq. 1 quadrature
// ablation, trace replay, and the transaction-level workload engine.

func BenchmarkExtE1GapTrend(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = report.FigE1GapTrend(rp)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("extE1", out)
}

func BenchmarkExtE2ClusterPolicies(b *testing.B) {
	rp := benchCorpus(b)
	var fleet []*repro.PlacementProfile
	for _, r := range rp.YearRange(2012, 2016).All()[:12] {
		p, err := repro.NewPlacementProfile(r.ID, r.MustCurve())
		if err != nil {
			b.Fatal(err)
		}
		fleet = append(fleet, p)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = report.FigE2ClusterPolicies(fleet)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("extE2", out)
}

func BenchmarkExtE3Quadrature(b *testing.B) {
	rp := benchCorpus(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = report.FigE3QuadratureAblation(rp)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("extE3", out)
}

func BenchmarkExtTraceReplayDay(b *testing.B) {
	rp := benchCorpus(b)
	var fleet []*repro.PlacementProfile
	var capacity float64
	for _, r := range rp.YearRange(2011, 2016).All()[:30] {
		p, err := repro.NewPlacementProfile(r.ID, r.MustCurve())
		if err != nil {
			b.Fatal(err)
		}
		fleet = append(fleet, p)
		capacity += p.MaxOps
	}
	tr, err := repro.DiurnalTrace(repro.DiurnalConfig{
		Seed: 1, Days: 1, BaseOps: 0.45 * capacity, DailySwing: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var results []repro.ReplayResult
	for i := 0; i < b.N; i++ {
		results, err = repro.CompareTraceStrategies(tr, fleet, repro.PlacementOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, loaded := printed.LoadOrStore("trace", true); !loaded {
		fmt.Println("\nOne simulated day, 30-server fleet:")
		for _, r := range results {
			fmt.Printf("  %-14s %7.1f kWh, fleet EE %.1f\n", r.Strategy, r.EnergyKWh, r.AvgEE)
		}
	}
}

func BenchmarkExtWorkloadInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.SimulateWorkload(repro.WorkloadConfig{
			Seed: int64(i), CapacityOpsPerSec: 5e5, TargetRate: 3.5e5, DurationSeconds: 60,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullReportWarm times report.Full — sweeps included — over a
// pre-generated (cache-warm) corpus: the steady-state cost of
// regenerating the paper's whole evaluation section.
func BenchmarkFullReportWarm(b *testing.B) {
	rp := benchCorpus(b)
	opts := report.Options{Sweeps: true, SweepSeconds: 20, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.Full(rp, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullReportCold includes corpus generation and first-touch
// cache fills — the specreport end-to-end cost.
func BenchmarkFullReportCold(b *testing.B) {
	opts := report.Options{Sweeps: true, SweepSeconds: 20, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rp, err := synth.NewRepository(synth.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := report.Full(rp.Valid(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Fleet-scale benchmarks: cluster composition, fleet generation, and
// the corpus codecs at the 10k-100k server scale the ROADMAP targets.
// Before/after numbers for the fast-path rewrite live in
// BENCH_fleet.json.

// benchFleetProfiles builds an n-server fleet by replicating the
// 2009-2016 corpus profiles.
func benchFleetProfiles(b *testing.B, n int) []*repro.PlacementProfile {
	b.Helper()
	rp := benchCorpus(b)
	servers := rp.YearRange(2009, 2016).All()
	fleet := make([]*repro.PlacementProfile, n)
	for i := 0; i < n; i++ {
		r := servers[i%len(servers)]
		p, err := repro.NewPlacementProfile(fmt.Sprintf("%s-%d", r.ID, i), r.MustCurve())
		if err != nil {
			b.Fatal(err)
		}
		fleet[i] = p
	}
	return fleet
}

func benchmarkFleetCompose(b *testing.B, n int) {
	fleet := benchFleetProfiles(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, err := repro.ComposeCluster(fleet, repro.PolicyPack)
		if err != nil {
			b.Fatal(err)
		}
		if agg.EP() <= 0 {
			b.Fatal("non-positive cluster EP")
		}
	}
}

func BenchmarkFleetCompose10k(b *testing.B)  { benchmarkFleetCompose(b, 10_000) }
func BenchmarkFleetCompose100k(b *testing.B) { benchmarkFleetCompose(b, 100_000) }

func BenchmarkFleetCompare1k(b *testing.B) {
	fleet := benchFleetProfiles(b, 1_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.CompareClusterPolicies(fleet); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetGenerate10k times the sharded fleet synthesizer.
func BenchmarkFleetGenerate10k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := repro.GenerateFleet(repro.FleetConfig{Seed: 1, Servers: 10_000})
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) != 10_000 {
			b.Fatalf("got %d servers", len(rs))
		}
	}
}

// benchmarkFleetRead times parsing a 10k-server corpus from one codec.
func benchmarkFleetRead(b *testing.B,
	write func(io.Writer, []*repro.Result) error,
	read func(io.Reader) ([]*repro.Result, error)) {
	b.Helper()
	rs, err := repro.GenerateFleet(repro.FleetConfig{Seed: 1, Servers: 10_000})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := write(&buf, rs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := read(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(rs) {
			b.Fatalf("got %d results", len(got))
		}
	}
}

func BenchmarkFleetReadBinary10k(b *testing.B) {
	benchmarkFleetRead(b, repro.WriteBinary, repro.ReadBinary)
}

func BenchmarkFleetReadCSV10k(b *testing.B) {
	benchmarkFleetRead(b, repro.WriteCSV, repro.ReadCSV)
}

func BenchmarkFleetReadJSON10k(b *testing.B) {
	benchmarkFleetRead(b, repro.WriteJSON, repro.ReadJSON)
}

func BenchmarkFleetWriteBinary10k(b *testing.B) {
	rs, err := repro.GenerateFleet(repro.FleetConfig{Seed: 1, Servers: 10_000})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := repro.WriteBinary(&buf, rs); err != nil {
			b.Fatal(err)
		}
	}
}
